"""Common-divisor extraction across multiple functions (gcx-lite).

Brayton-style multilevel area optimization: find a kernel shared by
several output expressions (or used repeatedly inside one), pull it out
as a new intermediate node, and substitute.  This is the "algebraic
restructuring" the paper's introduction credits with preserving
multifault testability, and it is what turns a forest of per-output
factored trees into a genuinely multilevel network.

Works on algebraic expressions (see :mod:`repro.synth.divide`); new
nodes get fresh variable indices above the primary inputs, and the
result lowers through the ordinary factoring path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..network import Builder, Circuit
from ..twolevel import Cover, espresso
from .divide import AlgExpr, cover_to_expr, divide, kernels, lit_id
from .factor import build_expression, factor_expr


@dataclass
class ExtractionResult:
    """Outcome of common-divisor extraction.

    Attributes:
        outputs: output name -> rewritten expression (may reference
            node variables).
        nodes: node variable index -> defining expression, in creation
            order (a node may reference earlier nodes).
        literals_before / literals_after: SOP literal counts, counting
            node definitions.
    """

    outputs: Dict[str, AlgExpr]
    nodes: Dict[int, AlgExpr] = field(default_factory=dict)
    literals_before: int = 0
    literals_after: int = 0


def _expr_literals(expr: AlgExpr) -> int:
    return sum(len(c) for c in expr)


def _kernel_value(
    kernel: AlgExpr, exprs: List[AlgExpr]
) -> Tuple[int, List[Tuple[int, AlgExpr, AlgExpr]]]:
    """Total literal saving of extracting ``kernel`` across ``exprs``.

    Returns (value, uses) where uses holds (index, quotient, remainder)
    for each expression the kernel divides.
    """
    k_lits = _expr_literals(kernel)
    value = -k_lits  # the node definition must be paid for once
    uses = []
    for idx, expr in enumerate(exprs):
        quotient, remainder = divide(expr, kernel)
        if not quotient:
            continue
        before = _expr_literals(expr)
        after = (
            _expr_literals(quotient)
            + len(quotient)  # one node literal per quotient cube
            + _expr_literals(remainder)
        )
        if before - after > 0:
            value += before - after
            uses.append((idx, quotient, remainder))
    return value, uses


def extract_common_divisors(
    output_exprs: Dict[str, AlgExpr],
    num_vars: int,
    max_nodes: int = 50,
    max_kernels_per_expr: int = 40,
) -> ExtractionResult:
    """Iteratively extract the most valuable shared kernel.

    ``num_vars`` is the primary-input count; node variables are
    allocated from ``num_vars`` upward.
    """
    names = list(output_exprs)
    exprs: List[AlgExpr] = [list(output_exprs[n]) for n in names]
    result = ExtractionResult(
        outputs={},
        literals_before=sum(_expr_literals(e) for e in exprs),
    )
    next_var = num_vars
    for _ in range(max_nodes):
        # kernels are gathered from (and substituted into) the output
        # expressions only; node definitions are immutable once created,
        # which keeps node dependencies in creation order
        candidates: Dict[Tuple, AlgExpr] = {}
        for expr in exprs:
            for _cok, kernel in kernels(expr)[:max_kernels_per_expr]:
                if len(kernel) < 2:
                    continue
                key = tuple(sorted(tuple(sorted(c)) for c in kernel))
                candidates.setdefault(key, kernel)
        best_kernel = None
        best_value = 0
        for kernel in candidates.values():
            value, uses = _kernel_value(kernel, exprs)
            if value > best_value and len(uses) >= 1:
                best_kernel, best_value = kernel, value
        if best_kernel is None:
            break
        node_var = next_var
        next_var += 1
        node_lit = lit_id(node_var, True)
        _value, uses = _kernel_value(best_kernel, exprs)
        for idx, quotient, remainder in uses:
            exprs[idx] = [
                frozenset(q | {node_lit}) for q in quotient
            ] + list(remainder)
        result.nodes[node_var] = list(best_kernel)
    result.outputs = {n: exprs[i] for i, n in enumerate(names)}
    result.literals_after = sum(
        _expr_literals(e) for e in exprs
    ) + sum(_expr_literals(e) for e in result.nodes.values())
    return result


def shared_covers_to_circuit(
    name: str,
    input_names: List[str],
    output_covers: Dict[str, Cover],
    minimize: bool = True,
    gate_delay: float = 1.0,
) -> Circuit:
    """Like :func:`repro.synth.covers_to_circuit` but with common-divisor
    extraction, producing a multilevel network with shared logic."""
    num_vars = len(input_names)
    prepared: Dict[str, AlgExpr] = {}
    for out, cover in output_covers.items():
        if cover.num_vars != num_vars:
            raise ValueError(f"cover arity mismatch for {out!r}")
        if minimize and cover.cubes:
            cover = espresso(cover).cover
        prepared[out] = cover_to_expr(cover)
    extraction = extract_common_divisors(prepared, num_vars)

    b = Builder(name)
    leaf: Dict[int, int] = {
        i: b.input(n) for i, n in enumerate(input_names)
    }
    # node definitions were created in dependency order
    for node_var, expr in extraction.nodes.items():
        root = build_expression(
            b.circuit, factor_expr(expr), leaf, gate_delay, gate_delay
        )
        leaf[node_var] = root
    for out, expr in extraction.outputs.items():
        root = build_expression(
            b.circuit, factor_expr(expr), leaf, gate_delay, gate_delay
        )
        b.output(out, root)
    return b.done()
