"""Algebraic division and kernel extraction (Brayton-McMullen).

Multilevel synthesis treats an SOP as an *algebraic* expression: each
literal (variable, polarity) is an opaque symbol and cubes are sets of
symbols.  Division, kernels and co-kernels are then purely combinatorial.
This is the machinery behind factoring (:mod:`repro.synth.factor`) and
common-divisor extraction -- the "algebraic restructuring techniques"
the paper's introduction cites as multifault-testability preserving.

Literal encoding: ``2*var + polarity`` where polarity 1 = positive.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..twolevel import Cover, Cube

#: An algebraic cube: a frozenset of literal ids.
AlgCube = FrozenSet[int]
#: An algebraic expression: a list of algebraic cubes (an SOP).
AlgExpr = List[AlgCube]


def lit_id(var: int, positive: bool) -> int:
    return 2 * var + (1 if positive else 0)


def lit_var(lit: int) -> int:
    return lit // 2


def lit_positive(lit: int) -> bool:
    return bool(lit & 1)


def cover_to_expr(cover: Cover) -> AlgExpr:
    """Convert a cube cover to algebraic form."""
    expr: AlgExpr = []
    for cube in cover.cubes:
        expr.append(
            frozenset(lit_id(v, bool(val)) for v, val in cube.literals())
        )
    return expr


def expr_to_cover(expr: AlgExpr, num_vars: int) -> Cover:
    """Convert back to a cube cover."""
    cover = Cover(num_vars)
    for acube in expr:
        cube = Cube.universe(num_vars)
        for lit in acube:
            cube = cube.with_literal(lit_var(lit), int(lit_positive(lit)))
        cover.add(cube)
    return cover


def divide(expr: AlgExpr, divisor: AlgExpr) -> Tuple[AlgExpr, AlgExpr]:
    """Weak (algebraic) division: expr = divisor * quotient + remainder.

    Standard algorithm: for each divisor cube d, collect
    ``{c - d : c in expr, d subset of c}``; the quotient is the
    intersection of those sets across all divisor cubes; the remainder is
    whatever the product fails to reproduce.
    """
    if not divisor:
        return [], list(expr)
    quotient: Optional[Set[AlgCube]] = None
    for dcube in divisor:
        partials = {
            frozenset(c - dcube) for c in expr if dcube <= c
        }
        quotient = partials if quotient is None else (quotient & partials)
        if not quotient:
            return [], list(expr)
    assert quotient is not None
    product = {q | d for q in quotient for d in divisor}
    remainder = [c for c in expr if c not in product]
    return sorted(quotient, key=sorted), remainder


def literal_counts(expr: AlgExpr) -> Dict[int, int]:
    """How many cubes each literal appears in."""
    counts: Dict[int, int] = {}
    for cube in expr:
        for lit in cube:
            counts[lit] = counts.get(lit, 0) + 1
    return counts


def most_common_literal(expr: AlgExpr) -> Optional[int]:
    """The literal occurring in the most cubes (>= 2), else None."""
    counts = literal_counts(expr)
    best = None
    best_count = 1
    for lit, count in sorted(counts.items()):
        if count > best_count:
            best, best_count = lit, count
    return best


def cube_free(expr: AlgExpr) -> bool:
    """An expression is cube-free if no literal appears in every cube."""
    if not expr:
        return False
    common = set.intersection(*(set(c) for c in expr))
    return not common


def make_cube_free(expr: AlgExpr) -> AlgExpr:
    """Divide out the largest common cube."""
    if not expr:
        return []
    common = frozenset(set.intersection(*(set(c) for c in expr)))
    if not common:
        return list(expr)
    return [frozenset(c - common) for c in expr]


def kernels(
    expr: AlgExpr, min_level: int = 0
) -> List[Tuple[AlgCube, AlgExpr]]:
    """All (co-kernel, kernel) pairs of an expression.

    A kernel is a cube-free quotient of the expression by a cube (the
    co-kernel).  Classic recursive enumeration with literal-order pruning.
    The expression itself is included (with empty co-kernel) when it is
    cube-free.
    """
    results: List[Tuple[AlgCube, AlgExpr]] = []
    seen: Set[Tuple[AlgCube, ...]] = set()

    all_lits = sorted(literal_counts(expr))

    def recurse(current: AlgExpr, cokernel: AlgCube, min_lit_idx: int):
        for idx in range(min_lit_idx, len(all_lits)):
            lit = all_lits[idx]
            with_lit = [c for c in current if lit in c]
            if len(with_lit) < 2:
                continue
            quotient = [frozenset(c - {lit}) for c in with_lit]
            common = frozenset(
                set.intersection(*(set(c) for c in quotient))
            ) if quotient else frozenset()
            # prune: if the common cube contains an earlier literal we
            # will find (or already found) this kernel elsewhere
            if any(all_lits.index(l) < idx for l in common if l in all_lits):
                continue
            new_cok = frozenset(cokernel | {lit} | common)
            kernel = [frozenset(c - common) for c in quotient]
            kkey = tuple(sorted(kernel, key=sorted))
            if kkey not in seen:
                seen.add(kkey)
                results.append((new_cok, kernel))
            recurse(kernel, new_cok, idx + 1)

    recurse(make_cube_free(expr), frozenset(), 0)
    # level-0 kernel: the cube-free form of the expression itself (with
    # the divided-out common cube as its co-kernel)
    if len(expr) >= 2:
        base = make_cube_free(expr)
        common = frozenset(
            set.intersection(*(set(c) for c in expr))
        )
        key = tuple(sorted(base, key=sorted))
        if key not in seen:
            seen.add(key)
            results.append((common, base))
    return results


def best_kernel(expr: AlgExpr) -> Optional[AlgExpr]:
    """A kernel with maximal estimated literal savings, or None."""
    candidates = kernels(expr)
    best = None
    best_value = 0
    for _cok, kernel in candidates:
        if len(kernel) < 2:
            continue
        quotient, _rem = divide(expr, kernel)
        if len(quotient) < 1:
            continue
        # literals of the product cubes vs literals of the factored form
        q_lits = sum(len(c) for c in quotient)
        k_lits = sum(len(c) for c in kernel)
        flat = len(kernel) * q_lits + len(quotient) * k_lits
        factored = q_lits + k_lits
        value = flat - factored
        if value > best_value:
            best, best_value = kernel, value
    return best
