"""Timing optimization: the stand-in for MIS-II ``speed_up`` [23], [12].

Two restructuring engines:

* :func:`timing_decompose` -- rebuild every multi-input AND/OR as a
  2-input tree merged Huffman-style by signal arrival time (earliest
  signals merge first, latest signals end up next to the root).  Local,
  cheap, works at any size.

* :func:`speed_up` -- per critical output: collapse the cone to a BDD
  over the primary inputs, then rebuild it either as an arrival-aware
  factored tree or as a *Shannon bypass* around the latest-arriving
  input (f = x ? f_x : f_x', putting the late signal one MUX from the
  output).  Keeps whichever realization improves arrival.  The Shannon
  bypass is the generalized form of the carry-skip trick -- it buys
  delay and, exactly as the paper describes, can introduce single
  stuck-at redundancies, which is what makes the optimized MCNC-style
  circuits interesting KMS inputs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bdd import BDD, circuit_bdds
from ..network import Circuit, GateType
from ..timing import AsBuiltDelayModel, DelayModel, analyze
from ..twolevel import espresso
from .isop import bdd_to_cover
from .optimize import area_optimize


def _huffman_tree(
    circuit: Circuit,
    gtype: GateType,
    signals: List[Tuple[float, int]],
    gate_delay: float,
) -> Tuple[float, int]:
    """Merge (arrival, gid) signals into a 2-input tree, earliest first.

    Returns (root arrival, root gid).  Optimal for minimizing the root
    arrival under a fixed per-gate delay.
    """
    if not signals:
        raise ValueError("cannot build a tree from no signals")
    counter = itertools.count()
    heap = [(a, next(counter), g) for a, g in signals]
    heapq.heapify(heap)
    while len(heap) > 1:
        a1, _, g1 = heapq.heappop(heap)
        a2, _, g2 = heapq.heappop(heap)
        gid = circuit.add_simple(gtype, [g1, g2], gate_delay)
        heapq.heappush(heap, (max(a1, a2) + gate_delay, next(counter), gid))
    arrival, _, gid = heap[0]
    return arrival, gid


def timing_decompose(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    gate_delay: float = 1.0,
) -> int:
    """Split every fanin-3+ AND/OR/NAND/NOR into arrival-balanced
    2-input trees, in place.  Returns the number of gates split.

    The inverting types keep their inversion at the root (the tree body
    is the non-inverting dual).
    """
    model = model if model is not None else AsBuiltDelayModel()
    split = 0
    for gid in list(circuit.topological_order()):
        gate = circuit.gates.get(gid)
        if gate is None or len(gate.fanin) <= 2:
            continue
        if gate.gtype not in (
            GateType.AND,
            GateType.OR,
            GateType.NAND,
            GateType.NOR,
        ):
            continue
        ann = analyze(circuit, model)
        body_type = (
            GateType.AND
            if gate.gtype in (GateType.AND, GateType.NAND)
            else GateType.OR
        )
        signals = []
        srcs = []
        for cid in list(gate.fanin):
            conn = circuit.conns[cid]
            signals.append(
                (
                    ann.arrival[conn.src] + model.conn_delay(circuit, cid),
                    conn.src,
                )
            )
            srcs.append(conn.src)
        # keep the last two signals for the original gate (it becomes the
        # tree root and keeps its type/polarity and fanouts)
        signals.sort()
        tail = signals[-1]
        _, body = _huffman_tree(
            circuit, body_type, signals[:-1], gate_delay
        )
        for cid in list(gate.fanin):
            circuit.remove_connection(cid)
        circuit.connect(body, gid)
        circuit.connect(tail[1], gid)
        split += 1
    return split


@dataclass
class SpeedupStats:
    """What one speed_up run did."""

    iterations: int
    collapsed_outputs: List[str]
    bypassed_inputs: List[str]
    delay_before: float
    delay_after: float


def speed_up(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    max_iterations: int = 20,
    collapse_limit: int = 14,
    allow_bypass: bool = True,
    gate_delay: float = 1.0,
) -> Tuple[Circuit, SpeedupStats]:
    """Delay-optimize a circuit; returns (new circuit, stats).

    Works on a copy.  Only accepts restructurings that strictly improve
    the rebuilt output's arrival, so the result is never slower than the
    input (topologically).
    """
    model = model if model is not None else AsBuiltDelayModel()
    work = circuit.copy(f"{circuit.name}#fast")
    stats = SpeedupStats(
        iterations=0,
        collapsed_outputs=[],
        bypassed_inputs=[],
        delay_before=analyze(circuit, model).delay,
        delay_after=0.0,
    )
    if len(work.inputs) > collapse_limit:
        timing_decompose(work, model, gate_delay)
        area_optimize(work)
        stats.delay_after = analyze(work, model).delay
        if stats.delay_after > stats.delay_before + 1e-9:
            # decomposing wide gates into 2-input trees can cost levels
            # under a unit model; honor the never-slower contract
            work = circuit.copy(f"{circuit.name}#fast")
            stats.delay_after = stats.delay_before
        return work, stats

    attempted = set()
    for _ in range(max_iterations):
        stats.iterations += 1
        ann = analyze(work, model)
        candidates = sorted(
            (gid for gid in work.outputs if gid not in attempted),
            key=lambda g: -ann.arrival[g],
        )
        if not candidates or ann.arrival[candidates[0]] < ann.delay:
            break
        po = candidates[0]
        attempted.add(po)
        improved = _rebuild_output(
            work, po, model, allow_bypass, gate_delay, stats
        )
        area_optimize(work)
        if not improved and len(attempted) >= len(work.outputs):
            break
    area_optimize(work)
    stats.delay_after = analyze(work, model).delay
    return work, stats


def _rebuild_output(
    work: Circuit,
    po: int,
    model: DelayModel,
    allow_bypass: bool,
    gate_delay: float,
    stats: SpeedupStats,
) -> bool:
    """Try to rebuild one output cone; returns True if kept."""
    ann = analyze(work, model)
    old_arrival = ann.arrival[po]
    bdd, nodes = circuit_bdds(work)
    func = nodes[po]
    if func in (bdd.ZERO, bdd.ONE):
        return False
    pi_arrival = {
        i: model.input_arrival(work, gid)
        for i, gid in enumerate(work.inputs)
    }
    support = _support(bdd, func)
    builder = _ConeBuilder(work, bdd, pi_arrival, gate_delay)

    best: Optional[Tuple[float, int]] = None
    flat = builder.build_cover(func)
    if flat is not None and (best is None or flat[0] < best[0]):
        best = flat
    bypassed = None
    if allow_bypass and support:
        latest = max(support, key=lambda v: pi_arrival[v])
        shannon = builder.build_shannon(func, latest)
        if shannon is not None and (best is None or shannon[0] < best[0]):
            best = shannon
            bypassed = latest
    if best is None or best[0] >= old_arrival - 1e-9:
        return False
    arrival, root = best
    po_conn = work.gates[po].fanin[0]
    work.move_connection_source(po_conn, root)
    name = work.gates[po].name or f"po{po}"
    stats.collapsed_outputs.append(name)
    if bypassed is not None:
        stats.bypassed_inputs.append(
            work.gates[work.inputs[bypassed]].name or f"pi{bypassed}"
        )
    return True


def _support(bdd: BDD, node: int) -> List[int]:
    """Variable indices the function depends on."""
    seen = set()
    support = set()
    stack = [node]
    while stack:
        n = stack.pop()
        if n <= 1 or n in seen:
            continue
        seen.add(n)
        var, low, high = bdd._nodes[n]
        support.add(var)
        stack.extend((low, high))
    return sorted(support)


class _ConeBuilder:
    """Realizes BDD functions as timing-aware gate trees on a circuit."""

    def __init__(
        self,
        circuit: Circuit,
        bdd: BDD,
        pi_arrival: Dict[int, float],
        gate_delay: float,
    ) -> None:
        self.circuit = circuit
        self.bdd = bdd
        self.pi_arrival = pi_arrival
        self.gate_delay = gate_delay
        self._inverters: Dict[int, int] = {}

    def _literal(self, var: int, value: int) -> Tuple[float, int]:
        gid = self.circuit.inputs[var]
        arrival = self.pi_arrival[var]
        if value:
            return arrival, gid
        if gid not in self._inverters:
            self._inverters[gid] = self.circuit.add_simple(
                GateType.NOT, [gid], self.gate_delay
            )
        return arrival + self.gate_delay, self._inverters[gid]

    def build_cover(self, func: int) -> Optional[Tuple[float, int]]:
        """Two-level-from-ISOP realization with Huffman-by-arrival trees."""
        num_vars = len(self.circuit.inputs)
        cover = bdd_to_cover(self.bdd, func, num_vars)
        if cover.cubes:
            cover = espresso(cover).cover
        if not cover.cubes:
            return None
        terms: List[Tuple[float, int]] = []
        for cube in cover.cubes:
            lits = [self._literal(v, val) for v, val in cube.literals()]
            if not lits:
                return None  # tautology: caller handles constants
            terms.append(
                _huffman_tree(
                    self.circuit, GateType.AND, lits, self.gate_delay
                )
            )
        return _huffman_tree(
            self.circuit, GateType.OR, terms, self.gate_delay
        )

    def build_shannon(
        self, func: int, var: int
    ) -> Optional[Tuple[float, int]]:
        """f = var ? f1 : f0 with the cofactors built flat -- the
        generalized bypass around a late input."""
        bdd = self.bdd
        f0 = bdd.restrict(func, var, 0)
        f1 = bdd.restrict(func, var, 1)
        if f0 == f1:
            return None
        sel_arrival, sel = self._literal(var, 1)
        g = self.gate_delay

        def realize(node: int) -> Tuple[float, int]:
            if node == bdd.ZERO:
                return 0.0, self.circuit.add_gate(GateType.CONST0, 0.0)
            if node == bdd.ONE:
                return 0.0, self.circuit.add_gate(GateType.CONST1, 0.0)
            built = self.build_cover(node)
            if built is None:
                raise ValueError("unreachable: non-constant cover empty")
            return built

        a0, g0 = realize(f0)
        a1, g1 = realize(f1)
        inv = self.circuit.add_simple(GateType.NOT, [sel], g)
        and0 = self.circuit.add_simple(GateType.AND, [inv, g0], g)
        and1 = self.circuit.add_simple(GateType.AND, [sel, g1], g)
        root = self.circuit.add_simple(GateType.OR, [and0, and1], g)
        arrival = max(
            sel_arrival + 3 * g,  # through the inverter leg
            sel_arrival + 2 * g,
            a0 + 2 * g,
            a1 + 2 * g,
        )
        return arrival, root
