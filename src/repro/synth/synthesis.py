"""Synthesis entry points: covers -> circuits, cones -> covers.

This is the pipeline standing in for the paper's MIS-II flow: PLA-style
specifications are minimized (espresso-lite), factored, and lowered to
simple-gate networks; circuit cones can be collapsed back to covers
(BDD -> ISOP) for resynthesis, which is what the timing optimizer uses.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..bdd import BDD, circuit_bdds
from ..network import Builder, Circuit
from ..twolevel import Cover, espresso
from .factor import cover_to_gates
from .isop import bdd_to_cover


def covers_to_circuit(
    name: str,
    input_names: Sequence[str],
    output_covers: Dict[str, Cover],
    minimize: bool = True,
    gate_delay: float = 1.0,
) -> Circuit:
    """Build a multilevel simple-gate circuit from per-output covers.

    Each cover is espresso-minimized (optionally), factored, and lowered.
    Cover variable ``i`` corresponds to ``input_names[i]``.
    """
    b = Builder(name)
    leaves = {i: b.input(n) for i, n in enumerate(input_names)}
    for out_name, cover in output_covers.items():
        if cover.num_vars != len(input_names):
            raise ValueError(
                f"cover for {out_name!r} has {cover.num_vars} vars, "
                f"expected {len(input_names)}"
            )
        if minimize and cover.cubes:
            cover = espresso(cover).cover
        root = cover_to_gates(b.circuit, cover, leaves, gate_delay)
        b.output(out_name, root)
    return b.done()


def collapse_to_covers(
    circuit: Circuit, minimize: bool = False
) -> Tuple[List[str], Dict[str, Cover]]:
    """Collapse a whole circuit into per-output covers over its PIs.

    Inverse of :func:`covers_to_circuit` up to minimization: the covers
    are exact irredundant SOPs extracted from the circuit's BDDs.
    Returns (input names in cover-variable order, output covers).
    """
    bdd, nodes = circuit_bdds(circuit)
    num_vars = len(circuit.inputs)
    input_names = circuit.input_names()
    covers: Dict[str, Cover] = {}
    for po in circuit.outputs:
        name = circuit.gates[po].name or f"po{po}"
        cover = bdd_to_cover(bdd, nodes[po], num_vars)
        if minimize and cover.cubes:
            cover = espresso(cover).cover
        covers[name] = cover
    return input_names, covers


def resynthesize(circuit: Circuit, minimize: bool = True) -> Circuit:
    """Collapse and rebuild a circuit (functionally equivalent)."""
    input_names, covers = collapse_to_covers(circuit, minimize=False)
    fresh = covers_to_circuit(
        f"{circuit.name}#resyn", input_names, covers, minimize=minimize
    )
    for gid, fresh_gid in zip(circuit.inputs, fresh.inputs):
        fresh.input_arrival[fresh_gid] = circuit.input_arrival.get(gid, 0.0)
    return fresh


def cone_function(
    circuit: Circuit, gid: int
) -> Tuple[BDD, int, List[int]]:
    """BDD of one gate's function over the primary inputs.

    Returns (manager, node, PI gids in cover-variable order).
    """
    bdd, nodes = circuit_bdds(circuit)
    return bdd, nodes[gid], circuit.inputs
