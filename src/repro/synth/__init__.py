"""Multilevel synthesis substrate: division, factoring, ISOP, speedup."""

from .divide import (
    AlgCube,
    AlgExpr,
    best_kernel,
    cover_to_expr,
    cube_free,
    divide,
    expr_to_cover,
    kernels,
    make_cube_free,
)
from .factor import (
    build_expression,
    cover_to_gates,
    factor_cover,
    factor_expr,
    factored_literal_count,
)
from .isop import bdd_to_cover, isop
from .synthesis import (
    collapse_to_covers,
    cone_function,
    covers_to_circuit,
    resynthesize,
)
from .bypass import (
    BypassStats,
    bypass_critical_output,
    generalized_bypass,
)
from .extract import (
    ExtractionResult,
    extract_common_divisors,
    shared_covers_to_circuit,
)
from .mapping import map_to_nand, map_to_nor
from .optimize import area_optimize, strash
from .speedup import SpeedupStats, speed_up, timing_decompose

__all__ = [
    "AlgCube",
    "AlgExpr",
    "BypassStats",
    "ExtractionResult",
    "bypass_critical_output",
    "generalized_bypass",
    "SpeedupStats",
    "extract_common_divisors",
    "shared_covers_to_circuit",
    "area_optimize",
    "bdd_to_cover",
    "best_kernel",
    "build_expression",
    "collapse_to_covers",
    "cone_function",
    "cover_to_expr",
    "cover_to_gates",
    "covers_to_circuit",
    "cube_free",
    "divide",
    "expr_to_cover",
    "factor_cover",
    "factor_expr",
    "factored_literal_count",
    "isop",
    "kernels",
    "make_cube_free",
    "map_to_nand",
    "map_to_nor",
    "resynthesize",
    "speed_up",
    "strash",
    "timing_decompose",
]
