"""Technology mapping lite: NAND-only / NOR-only networks.

Section 6.2 discusses custom, standard-cell and *gate-array* design
styles; gate arrays are classically seas of 2-input NANDs (or NORs).
`map_to_nand` / `map_to_nor` rewrite a simple-gate network into
{2-input NAND, NOT} (resp. NOR) form -- still a simple-gate network, so
the KMS algorithm runs on mapped circuits unchanged (covered by tests).

Delays: each mapped cell takes the library delay passed in; the
original complex-gate delays are intentionally discarded because after
mapping the cell library *is* the delay model (the situation Section II
assumes).
"""

from __future__ import annotations

from typing import Dict, List

from ..network import Builder, Circuit, GateType
from .optimize import area_optimize


def _tree(builder: Builder, gtype: GateType, srcs: List[int], delay: float):
    """Balanced 2-input tree of ``gtype`` (non-inverting types only)."""
    level = list(srcs)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                builder.circuit.add_simple(
                    gtype, [level[i], level[i + 1]], delay
                )
            )
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


class _Mapper:
    def __init__(
        self,
        circuit: Circuit,
        cell: GateType,
        cell_delay: float,
        inv_delay: float,
        name_suffix: str,
    ) -> None:
        self.src = circuit
        self.cell = cell  # NAND or NOR
        self.cell_delay = cell_delay
        self.inv_delay = inv_delay
        self.b = Builder(f"{circuit.name}{name_suffix}")
        self.mapped: Dict[int, int] = {}
        self.inverters: Dict[int, int] = {}

    def inv(self, gid: int) -> int:
        if gid not in self.inverters:
            self.inverters[gid] = self.b.circuit.add_simple(
                GateType.NOT, [gid], self.inv_delay
            )
        return self.inverters[gid]

    def cell2(self, a: int, b_: int) -> int:
        return self.b.circuit.add_simple(
            self.cell, [a, b_], self.cell_delay
        )

    def cell_tree_positive(self, srcs: List[int]) -> int:
        """AND of srcs (for NAND cell) / OR of srcs (for NOR cell),
        built as alternating cell+inverter levels."""
        if len(srcs) == 1:
            return srcs[0]
        level = list(srcs)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(
                    self.inv(self.cell2(level[i], level[i + 1]))
                )
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def map_gate(self, gid: int) -> int:
        gate = self.src.gates[gid]
        ins = [self.mapped[s] for s in self.src.fanin_gates(gid)]
        t = gate.gtype
        nand = self.cell is GateType.NAND
        if t is GateType.BUF:
            return ins[0]
        if t is GateType.NOT:
            return self.inv(ins[0])
        if t in (GateType.CONST0, GateType.CONST1):
            raise AssertionError("constants handled by caller")
        if nand:
            if t is GateType.AND:
                return self.cell_tree_positive(ins)
            if t is GateType.NAND:
                if len(ins) == 1:
                    return self.inv(ins[0])
                if len(ins) == 2:
                    return self.cell2(*ins)
                return self.inv(self.cell_tree_positive(ins))
            if t is GateType.OR:
                # a + b = NAND(a', b')
                if len(ins) == 1:
                    return ins[0]
                inverted = [self.inv(i) for i in ins]
                return self.inv(self.cell_tree_positive(inverted))
            if t is GateType.NOR:
                if len(ins) == 1:
                    return self.inv(ins[0])
                inverted = [self.inv(i) for i in ins]
                return self.cell_tree_positive(inverted)
        else:
            if t is GateType.OR:
                return self.cell_tree_positive(ins)
            if t is GateType.NOR:
                if len(ins) == 1:
                    return self.inv(ins[0])
                if len(ins) == 2:
                    return self.cell2(*ins)
                return self.inv(self.cell_tree_positive(ins))
            if t is GateType.AND:
                if len(ins) == 1:
                    return ins[0]
                inverted = [self.inv(i) for i in ins]
                return self.inv(self.cell_tree_positive(inverted))
            if t is GateType.NAND:
                if len(ins) == 1:
                    return self.inv(ins[0])
                inverted = [self.inv(i) for i in ins]
                return self.cell_tree_positive(inverted)
        raise ValueError(
            f"cannot map {t}; decompose complex gates first"
        )


def _map(
    circuit: Circuit,
    cell: GateType,
    cell_delay: float,
    inv_delay: float,
    suffix: str,
) -> Circuit:
    if not circuit.is_simple_gate_network():
        raise ValueError(
            "mapping requires a simple-gate network; run "
            "decompose_complex_gates first"
        )
    mapper = _Mapper(circuit, cell, cell_delay, inv_delay, suffix)
    b = mapper.b
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            mapper.mapped[gid] = b.input(
                gate.name, arrival=circuit.input_arrival.get(gid, 0.0)
            )
        elif gate.gtype is GateType.CONST0:
            mapper.mapped[gid] = b.const(0)
        elif gate.gtype is GateType.CONST1:
            mapper.mapped[gid] = b.const(1)
        elif gate.gtype is GateType.OUTPUT:
            src = mapper.mapped[circuit.fanin_gates(gid)[0]]
            b.output(gate.name, src)
        else:
            mapper.mapped[gid] = mapper.map_gate(gid)
    result = b.done()
    area_optimize(result)
    return result


def map_to_nand(
    circuit: Circuit, nand_delay: float = 1.0, inv_delay: float = 0.5
) -> Circuit:
    """Rewrite into {2-input NAND, NOT} (gate-array style)."""
    return _map(circuit, GateType.NAND, nand_delay, inv_delay, "_nand")


def map_to_nor(
    circuit: Circuit, nor_delay: float = 1.0, inv_delay: float = 0.5
) -> Circuit:
    """Rewrite into {2-input NOR, NOT}."""
    return _map(circuit, GateType.NOR, nor_delay, inv_delay, "_nor")
