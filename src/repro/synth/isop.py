"""Irredundant sum-of-products from BDDs (Minato-Morreale ISOP).

Used to collapse a circuit cone into a compact two-level cover: cone ->
BDD -> ISOP -> (espresso polish) -> factored gates.  The ISOP recursion
computes a cover f with L <= f <= U that is irredundant by construction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..bdd import BDD
from ..twolevel import Cover, Cube


def isop(bdd: BDD, lower: int, upper: int) -> Tuple[List[Dict[int, int]], int]:
    """Minato-Morreale ISOP for the interval [lower, upper].

    Returns (cubes, node) where cubes are var->value dicts and node is
    the BDD of the cover (lower <= node <= upper).
    """
    cache: Dict[Tuple[int, int], Tuple[List[Dict[int, int]], int]] = {}

    def rec(L: int, U: int) -> Tuple[List[Dict[int, int]], int]:
        if L == bdd.ZERO:
            return [], bdd.ZERO
        if U == bdd.ONE:
            return [{}], bdd.ONE
        key = (L, U)
        if key in cache:
            return cache[key]
        var = bdd._top_var(L, U)
        L0, L1 = bdd._cofactors(L, var)
        U0, U1 = bdd._cofactors(U, var)
        # minterms that can only be covered by cubes containing x'
        Lneg = bdd.apply_and(L0, bdd.negate(U1))
        c0, f0 = rec(Lneg, U0)
        # minterms that can only be covered by cubes containing x
        Lpos = bdd.apply_and(L1, bdd.negate(U0))
        c1, f1 = rec(Lpos, U1)
        # what remains must be covered by x-free cubes
        Lrest = bdd.apply_or(
            bdd.apply_and(L0, bdd.negate(f0)),
            bdd.apply_and(L1, bdd.negate(f1)),
        )
        Urest = bdd.apply_and(U0, U1)
        cr, fr = rec(Lrest, Urest)
        cubes: List[Dict[int, int]] = []
        for cube in c0:
            cubes.append({**cube, var: 0})
        for cube in c1:
            cubes.append({**cube, var: 1})
        cubes.extend(cr)
        node = bdd.ite(
            bdd.var(var), bdd.apply_or(f1, fr), bdd.apply_or(f0, fr)
        )
        cache[key] = (cubes, node)
        return cubes, node

    return rec(lower, upper)


def bdd_to_cover(bdd: BDD, node: int, num_vars: int) -> Cover:
    """Exact irredundant cover of a BDD function over ``num_vars``
    variables (variable index = cover variable index)."""
    cubes, result = isop(bdd, node, node)
    assert result == node, "ISOP must be exact when lower == upper"
    cover = Cover(num_vars)
    for assignment in cubes:
        cover.add(Cube.from_assignment(num_vars, assignment))
    return cover
