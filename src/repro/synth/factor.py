"""Factoring: SOP covers to gate trees.

``factor`` produces a factored form (the classic quick-factor recursion:
divide by the best kernel, else by the most common literal), and
``build_expression`` lowers a factored form onto a circuit as AND/OR/NOT
gates.  This is the "tech decomposition" step that turns two-level
covers into the simple-gate networks KMS operates on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..network import Circuit, GateType
from ..twolevel import Cover
from .divide import (
    AlgExpr,
    best_kernel,
    cover_to_expr,
    divide,
    lit_positive,
    lit_var,
    most_common_literal,
)

# A factored form is a tree:
#   ("lit", literal_id)
#   ("and", [children])
#   ("or", [children])
#   ("const", 0 or 1)
Factored = Tuple


def factor_expr(expr: AlgExpr) -> Factored:
    """Quick-factor an algebraic expression."""
    if not expr:
        return ("const", 0)
    if any(len(c) == 0 for c in expr):
        return ("const", 1)
    if len(expr) == 1:
        lits = sorted(expr[0])
        if len(lits) == 1:
            return ("lit", lits[0])
        return ("and", [("lit", l) for l in lits])
    divisor = best_kernel(expr)
    if divisor is None or len(divisor) < 2:
        lit = most_common_literal(expr)
        if lit is None:
            # no sharing at all: plain sum of products
            return (
                "or",
                [factor_expr([cube]) for cube in expr],
            )
        divisor = [frozenset({lit})]
    quotient, remainder = divide(expr, divisor)
    if not quotient:
        return ("or", [factor_expr([cube]) for cube in expr])
    parts: List[Factored] = [
        ("and", [factor_expr(quotient), factor_expr(divisor)])
    ]
    if remainder:
        parts.append(factor_expr(remainder))
    if len(parts) == 1:
        return parts[0]
    return ("or", parts)


def factor_cover(cover: Cover) -> Factored:
    """Factor a cube cover."""
    return factor_expr(cover_to_expr(cover))


def factored_literal_count(tree: Factored) -> int:
    """Number of literal leaves -- the classic factored-form cost."""
    kind = tree[0]
    if kind == "lit":
        return 1
    if kind == "const":
        return 0
    return sum(factored_literal_count(child) for child in tree[1])


def build_expression(
    circuit: Circuit,
    tree: Factored,
    leaf_of_var: Dict[int, int],
    gate_delay: float = 1.0,
    invert_delay: float = 1.0,
) -> int:
    """Lower a factored form onto ``circuit``.

    ``leaf_of_var`` maps algebraic variable index -> driving gid.
    Negative literals instantiate (shared) NOT gates.  Returns the gid of
    the tree's root.
    """
    inverters: Dict[int, int] = {}

    def leaf(lit: int) -> int:
        var = lit_var(lit)
        gid = leaf_of_var[var]
        if lit_positive(lit):
            return gid
        if gid not in inverters:
            inverters[gid] = circuit.add_simple(
                GateType.NOT, [gid], invert_delay
            )
        return inverters[gid]

    def lower(node: Factored) -> int:
        kind = node[0]
        if kind == "lit":
            return leaf(node[1])
        if kind == "const":
            return circuit.add_gate(
                GateType.CONST1 if node[1] else GateType.CONST0, 0.0
            )
        children = [lower(child) for child in node[1]]
        flat: List[int] = []
        for child in children:
            flat.append(child)
        if len(flat) == 1:
            return flat[0]
        gtype = GateType.AND if kind == "and" else GateType.OR
        return circuit.add_simple(gtype, flat, gate_delay)

    return lower(tree)


def cover_to_gates(
    circuit: Circuit,
    cover: Cover,
    leaf_of_var: Dict[int, int],
    gate_delay: float = 1.0,
) -> int:
    """Factor a cover and lower it; returns the root gid.

    Empty covers lower to constant 0; tautologies to constant 1.
    """
    return build_expression(
        circuit, factor_cover(cover), leaf_of_var, gate_delay, gate_delay
    )
