"""The Shannon bypass transform -- redundancy-introducing restructuring.

Given output f and an input x, build

    f_new = MUX(x, f_original, f_{x=1})

(dually with the x=0 cofactor).  Since f = x'·f₀ + x·f₁ this is
functionally the identity; the x = 1 cofactor is realized as fresh flat
logic while the original cone is *kept* on the other MUX leg.

The transform's reproduction value is the paper's opening premise made
concrete: "performance optimizations can, and do in practice, introduce
single stuck-at-fault redundancies into designs."  The kept original
cone overlaps heavily with the flat cofactor, so the bypassed circuit
is massively redundant (64 untestable faults on a bypassed rd73 cone)
-- a strong class-2 generator for the Table I benchmarks, and the
structure KMS's cleanup phase exists to untangle.

A note on what this transform does *not* reproduce: the carry-skip
adder's class-1 signature (false longest paths).  There the skip
condition is a function of *other* inputs (the propagate bits) whose
side-input requirements contradict the select -- with a raw input as
the select no such contradiction arises, and the kept cone's paths
remain sensitizable.  Class-1 behaviour in this repository comes from
the carry-skip family itself, as in the paper ("we have only found one
real family of circuits ... with stuck-at-fault redundancies and no
viable longest path").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bdd import circuit_bdds
from ..network import Circuit, GateType
from ..timing import AsBuiltDelayModel, DelayModel, analyze
from .isop import bdd_to_cover
from .speedup import _huffman_tree
from ..twolevel import espresso


@dataclass
class BypassStats:
    """What one bypass application did."""

    output: str
    selector: str
    cofactor_value: int
    arrival_before: float
    arrival_after: float


def generalized_bypass(
    circuit: Circuit,
    output_name: str,
    input_name: str,
    cofactor_value: int = 1,
    model: Optional[DelayModel] = None,
    gate_delay: float = 1.0,
) -> BypassStats:
    """Apply the bypass in place around ``input_name`` at
    ``output_name``.

    Unlike :func:`repro.synth.speed_up`, the original cone is kept (it
    still drives the MUX's other leg), matching how bypass logic is
    added in practice -- and creating the redundancies the paper
    studies.
    """
    model = model if model is not None else AsBuiltDelayModel()
    po = circuit.find_output(output_name)
    sel_pi = circuit.find_input(input_name)
    ann = analyze(circuit, model)
    arrival_before = ann.arrival[po]

    bdd, nodes = circuit_bdds(circuit)
    po_func = nodes[po]
    var_of = {gid: i for i, gid in enumerate(circuit.inputs)}
    cof = bdd.restrict(po_func, var_of[sel_pi], cofactor_value)

    # realize the cofactor as flat two-level logic over the PIs
    if cof == bdd.ZERO:
        cof_root = circuit.add_gate(GateType.CONST0, 0.0)
    elif cof == bdd.ONE:
        cof_root = circuit.add_gate(GateType.CONST1, 0.0)
    else:
        cover = bdd_to_cover(bdd, cof, len(circuit.inputs))
        cover = espresso(cover).cover
        pi_arrival = {
            i: model.input_arrival(circuit, gid)
            for i, gid in enumerate(circuit.inputs)
        }
        inverters: Dict[int, int] = {}

        def literal(var: int, value: int) -> Tuple[float, int]:
            gid = circuit.inputs[var]
            if value:
                return pi_arrival[var], gid
            if gid not in inverters:
                inverters[gid] = circuit.add_simple(
                    GateType.NOT, [gid], gate_delay
                )
            return pi_arrival[var] + gate_delay, inverters[gid]

        terms = []
        for cube in cover.cubes:
            lits = [literal(v, val) for v, val in cube.literals()]
            terms.append(
                _huffman_tree(circuit, GateType.AND, lits, gate_delay)
            )
        _, cof_root = _huffman_tree(
            circuit, GateType.OR, terms, gate_delay
        )

    # MUX(sel, original, cofactor): sel' * f + sel * f_cof
    old_conn = circuit.gates[po].fanin[0]
    old_root = circuit.conns[old_conn].src
    inv = circuit.add_simple(GateType.NOT, [sel_pi], gate_delay)
    sel_lit = inv if cofactor_value == 1 else sel_pi
    other_lit = sel_pi if cofactor_value == 1 else inv
    keep = circuit.add_simple(
        GateType.AND, [sel_lit, old_root], gate_delay
    )
    take = circuit.add_simple(
        GateType.AND, [other_lit, cof_root], gate_delay
    )
    mux = circuit.add_simple(GateType.OR, [keep, take], gate_delay)
    circuit.move_connection_source(old_conn, mux)

    ann_after = analyze(circuit, model)
    return BypassStats(
        output=output_name,
        selector=input_name,
        cofactor_value=cofactor_value,
        arrival_before=arrival_before,
        arrival_after=ann_after.arrival[po],
    )


def bypass_critical_output(
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    gate_delay: float = 1.0,
) -> Optional[BypassStats]:
    """Bypass the latest-arriving input of the most critical output.

    The automatic flavour used by the benchmark flow: find the PO with
    the worst arrival, pick the support input with the latest arrival,
    apply GBX around it.  Returns None when the circuit has no
    bypassable output (constant outputs, empty support).
    """
    model = model if model is not None else AsBuiltDelayModel()
    ann = analyze(circuit, model)
    for po in sorted(
        circuit.outputs, key=lambda g: -ann.arrival[g]
    ):
        bdd, nodes = circuit_bdds(circuit)
        func = nodes[po]
        if func in (bdd.ZERO, bdd.ONE):
            continue
        support_vars = _support_vars(bdd, func)
        if not support_vars:
            continue
        latest = max(
            support_vars,
            key=lambda v: model.input_arrival(
                circuit, circuit.inputs[v]
            ),
        )
        name_in = circuit.gates[circuit.inputs[latest]].name
        name_out = circuit.gates[po].name
        return generalized_bypass(
            circuit, name_out, name_in, 1, model, gate_delay
        )
    return None


def _support_vars(bdd, node: int) -> List[int]:
    seen = set()
    support = set()
    stack = [node]
    while stack:
        n = stack.pop()
        if n <= 1 or n in seen:
            continue
        seen.add(n)
        var, low, high = bdd._nodes[n]
        support.add(var)
        stack.extend((low, high))
    return sorted(support)
