"""BLIF (Berkeley Logic Interchange Format) subset: read and write.

Supported constructs: ``.model``, ``.inputs``, ``.outputs``, ``.names``
(SOP tables, including constants), ``.end``, comments and line
continuations.  :func:`parse_blif` is combinational and rejects
latches; :func:`parse_blif_sequential` accepts ``.latch`` lines and
returns a :class:`repro.seq.SequentialCircuit`, applying the paper's
Section I reduction at the file-format level (latch boundaries become
the extracted core's PIs/POs).

Writing flattens each gate to a ``.names`` table, so any tool in the
Berkeley lineage (SIS, ABC, mvsis) can consume our circuits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..network import Builder, Circuit, GateType
from ..twolevel import Cover, Cube
from ..synth.factor import cover_to_gates


class BlifError(Exception):
    """Malformed BLIF input."""


def _logical_lines(text: str) -> Iterable[List[str]]:
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        yield line.split()
    if pending:
        yield pending.split()


def parse_blif(text: str, gate_delay: float = 1.0) -> Circuit:
    """Parse combinational BLIF text into a circuit.

    Each ``.names`` table becomes a factored simple-gate tree (single
    output tables with '1' output phase; '0' phase tables are inverted).
    ``.latch`` is rejected; use :func:`parse_blif_sequential`.
    """
    parsed = _parse(text)
    if parsed["latches"]:
        raise BlifError(
            ".latch found: use parse_blif_sequential for sequential "
            "models"
        )
    return _build_combinational(parsed, gate_delay)


def _parse(text: str) -> dict:
    model_name = "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    latches: List[Tuple[str, str, int]] = []  # (data, output, init)
    tables: List[Tuple[List[str], str, List[Tuple[str, str]]]] = []
    current: Optional[Tuple[List[str], str, List[Tuple[str, str]]]] = None

    for tokens in _logical_lines(text):
        head = tokens[0]
        if head == ".model":
            model_name = tokens[1] if len(tokens) > 1 else model_name
        elif head == ".inputs":
            inputs.extend(tokens[1:])
        elif head == ".outputs":
            outputs.extend(tokens[1:])
        elif head == ".names":
            if len(tokens) < 2:
                raise BlifError(".names needs at least an output")
            current = (tokens[1:-1], tokens[-1], [])
            tables.append(current)
        elif head == ".latch":
            # .latch <data> <output> [<type> <control>] [<init>]
            body = tokens[1:]
            if len(body) < 2:
                raise BlifError(".latch needs data and output signals")
            data, output = body[0], body[1]
            init = 0
            rest = body[2:]
            if rest and rest[-1] in ("0", "1", "2", "3"):
                init = int(rest[-1]) & 1  # 2/3 (don't-care) -> 0/1
            latches.append((data, output, init))
        elif head in (".gate", ".mlatch"):
            raise BlifError(f"{head} is not supported")
        elif head == ".end":
            current = None
        elif head.startswith("."):
            raise BlifError(f"unsupported construct {head}")
        else:
            if current is None:
                raise BlifError(f"table row outside .names: {tokens}")
            if len(current[0]) == 0:
                # constant table: single output column
                current[2].append(("", tokens[0]))
            else:
                if len(tokens) != 2:
                    raise BlifError(f"bad table row: {tokens}")
                current[2].append((tokens[0], tokens[1]))
    return {
        "name": model_name,
        "inputs": inputs,
        "outputs": outputs,
        "latches": latches,
        "tables": tables,
    }


def _build_combinational(parsed: dict, gate_delay: float) -> Circuit:
    model_name = parsed["name"]
    inputs = parsed["inputs"]
    outputs = parsed["outputs"]
    tables = parsed["tables"]
    b = Builder(model_name)
    signal: Dict[str, int] = {}
    for name in inputs:
        signal[name] = b.input(name)

    # tables may be listed in any order: resolve iteratively
    remaining = list(tables)
    guard = len(remaining) + 1
    while remaining and guard:
        guard -= 1
        progressed = []
        for table in remaining:
            ins, out, rows = table
            if all(n in signal for n in ins):
                signal[out] = _lower_table(b, ins, rows, signal, gate_delay)
                progressed.append(table)
        for t in progressed:
            remaining.remove(t)
        if not progressed:
            missing = {n for t in remaining for n in t[0] if n not in signal}
            raise BlifError(f"undriven signals: {sorted(missing)}")
    for name in outputs:
        if name not in signal:
            raise BlifError(f"output {name} is undriven")
        b.output(name, signal[name])
    return b.done()


def parse_blif_sequential(text: str, gate_delay: float = 1.0):
    """Parse BLIF with ``.latch`` lines into a
    :class:`repro.seq.SequentialCircuit`.

    Latch outputs become pseudo primary inputs of the combinational
    core; latch data signals become pseudo primary outputs -- the
    Section I extraction, performed while reading the file.
    """
    from ..seq import Latch, SequentialCircuit

    parsed = _parse(text)
    latches = parsed["latches"]
    q_names = [q for _d, q, _i in latches]
    d_names = [d for d, _q, _i in latches]
    if len(set(q_names)) != len(q_names):
        raise BlifError("two latches drive the same output signal")
    overlap = set(q_names) & set(parsed["inputs"])
    if overlap:
        raise BlifError(
            f"latch outputs collide with inputs: {sorted(overlap)}"
        )
    core_spec = dict(parsed)
    core_spec["inputs"] = parsed["inputs"] + q_names
    core_spec["outputs"] = parsed["outputs"] + [
        d for d in d_names if d not in parsed["outputs"]
    ]
    core = _build_combinational(core_spec, gate_delay)
    machine_latches = [
        Latch(name=f"{q}_latch", data_output=d, state_input=q, init=init)
        for d, q, init in latches
    ]
    return SequentialCircuit(core, machine_latches, parsed["name"])


def write_blif_sequential(machine) -> str:
    """Serialize a :class:`repro.seq.SequentialCircuit` to BLIF."""
    core_text = write_blif(machine.core)
    lines = core_text.splitlines()
    data_names = {l.data_output for l in machine.latches}
    state_names = {l.state_input for l in machine.latches}
    out: List[str] = []
    for line in lines:
        if line.startswith(".inputs"):
            names = [
                n for n in line.split()[1:] if n not in state_names
            ]
            out.append(".inputs " + " ".join(names))
        elif line.startswith(".outputs"):
            names = [
                n for n in line.split()[1:] if n not in data_names
            ]
            out.append(".outputs " + " ".join(names))
            for latch in machine.latches:
                out.append(
                    f".latch {latch.data_output} {latch.state_input} "
                    f"{latch.init}"
                )
        else:
            out.append(line)
    return "\n".join(out) + ("\n" if not out[-1].endswith("\n") else "")


def _lower_table(
    b: Builder,
    ins: List[str],
    rows: List[Tuple[str, str]],
    signal: Dict[str, int],
    gate_delay: float,
) -> int:
    if not ins:
        value = rows and rows[0][1] == "1"
        return b.const(1 if value else 0)
    on_phase = all(r[1] == "1" for r in rows) if rows else True
    if rows and not (on_phase or all(r[1] == "0" for r in rows)):
        raise BlifError("mixed output phases in one table")
    cover = Cover(len(ins))
    for pattern, _out in rows:
        if len(pattern) != len(ins):
            raise BlifError(f"row width mismatch: {pattern}")
        cover.add(Cube.from_string(pattern))
    leaf = {i: signal[n] for i, n in enumerate(ins)}
    root = cover_to_gates(b.circuit, cover, leaf, gate_delay)
    if not on_phase:
        root = b.not_(root, delay=gate_delay)
    return root


def write_blif(circuit: Circuit) -> str:
    """Serialize a circuit to BLIF (one .names table per gate)."""
    names: Dict[int, str] = {}
    for gid, gate in circuit.gates.items():
        if gate.gtype is GateType.INPUT:
            names[gid] = gate.name or f"pi{gid}"
        elif gate.gtype is GateType.OUTPUT:
            names[gid] = gate.name or f"po{gid}"
        else:
            names[gid] = f"n{gid}"
    lines = [f".model {circuit.name}"]
    lines.append(".inputs " + " ".join(names[g] for g in circuit.inputs))
    lines.append(".outputs " + " ".join(names[g] for g in circuit.outputs))
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        ins = [names[s] for s in circuit.fanin_gates(gid)]
        out = names[gid]
        t = gate.gtype
        if t is GateType.INPUT:
            continue
        if t is GateType.CONST0:
            lines.append(f".names {out}")
        elif t is GateType.CONST1:
            lines.append(f".names {out}")
            lines.append("1")
        elif t in (GateType.BUF, GateType.OUTPUT):
            lines.append(f".names {ins[0]} {out}")
            lines.append("1 1")
        elif t is GateType.NOT:
            lines.append(f".names {ins[0]} {out}")
            lines.append("0 1")
        elif t is GateType.AND:
            lines.append(f".names {' '.join(ins)} {out}")
            lines.append("1" * len(ins) + " 1")
        elif t is GateType.NAND:
            lines.append(f".names {' '.join(ins)} {out}")
            for i in range(len(ins)):
                row = ["-"] * len(ins)
                row[i] = "0"
                lines.append("".join(row) + " 1")
        elif t is GateType.OR:
            lines.append(f".names {' '.join(ins)} {out}")
            for i in range(len(ins)):
                row = ["-"] * len(ins)
                row[i] = "1"
                lines.append("".join(row) + " 1")
        elif t is GateType.NOR:
            lines.append(f".names {' '.join(ins)} {out}")
            lines.append("0" * len(ins) + " 1")
        elif t in (GateType.XOR, GateType.XNOR):
            lines.append(f".names {' '.join(ins)} {out}")
            want = 1 if t is GateType.XOR else 0
            for m in range(1 << len(ins)):
                bits = [(m >> i) & 1 for i in range(len(ins))]
                if sum(bits) % 2 == want:
                    lines.append(
                        "".join(str(v) for v in bits) + " 1"
                    )
        else:  # pragma: no cover - exhaustive over GateType
            raise BlifError(f"cannot serialize {t}")
    lines.append(".end")
    return "\n".join(lines) + "\n"
