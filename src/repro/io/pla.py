"""Espresso PLA format: read and write.

Supports ``.i``, ``.o``, ``.ilb``, ``.ob``, ``.p``, ``.type fr/f``,
``.e``, comments, and the standard 0/1/- input plus 0/1/- output parts.
A parsed PLA is a set of per-output ON-set covers (and optional DC-set
covers for type fd), directly consumable by
:func:`repro.synth.covers_to_circuit` -- the front door of the MCNC-like
benchmark flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..twolevel import Cover, Cube


class PlaError(Exception):
    """Malformed PLA input."""


@dataclass
class Pla:
    """A parsed PLA: named inputs/outputs and per-output covers."""

    name: str
    input_names: List[str]
    output_names: List[str]
    on_sets: Dict[str, Cover] = field(default_factory=dict)
    dc_sets: Dict[str, Cover] = field(default_factory=dict)

    @property
    def num_inputs(self) -> int:
        return len(self.input_names)

    @property
    def num_outputs(self) -> int:
        return len(self.output_names)

    def to_circuit(self, minimize: bool = True, gate_delay: float = 1.0):
        """Lower to a multilevel simple-gate circuit (espresso + factor)."""
        from ..synth import covers_to_circuit

        return covers_to_circuit(
            self.name,
            self.input_names,
            {name: self.on_sets[name] for name in self.output_names},
            minimize=minimize,
            gate_delay=gate_delay,
        )


def parse_pla(text: str, name: str = "pla") -> Pla:
    """Parse espresso PLA text."""
    num_in: Optional[int] = None
    num_out: Optional[int] = None
    ilb: Optional[List[str]] = None
    ob: Optional[List[str]] = None
    pla_type = "fd"
    rows: List[Tuple[str, str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            tokens = line.split()
            key = tokens[0]
            if key == ".i":
                num_in = int(tokens[1])
            elif key == ".o":
                num_out = int(tokens[1])
            elif key == ".ilb":
                ilb = tokens[1:]
            elif key == ".ob":
                ob = tokens[1:]
            elif key == ".type":
                pla_type = tokens[1]
            elif key in (".p", ".e", ".end"):
                continue
            else:
                raise PlaError(f"unsupported directive {key}")
        else:
            tokens = line.split()
            if len(tokens) == 2:
                rows.append((tokens[0], tokens[1]))
            elif len(tokens) == 1 and num_in is not None:
                rows.append((tokens[0][:num_in], tokens[0][num_in:]))
            else:
                raise PlaError(f"bad row {line!r}")
    if num_in is None or num_out is None:
        raise PlaError(".i and .o are required")
    input_names = ilb if ilb else [f"x{i}" for i in range(num_in)]
    output_names = ob if ob else [f"y{i}" for i in range(num_out)]
    if len(input_names) != num_in or len(output_names) != num_out:
        raise PlaError("label count mismatch")
    pla = Pla(name, list(input_names), list(output_names))
    for out in output_names:
        pla.on_sets[out] = Cover(num_in)
        pla.dc_sets[out] = Cover(num_in)
    for in_part, out_part in rows:
        if len(in_part) != num_in or len(out_part) != num_out:
            raise PlaError(f"row width mismatch: {in_part} {out_part}")
        cube = Cube.from_string(in_part)
        for pos, ch in enumerate(out_part):
            out = output_names[pos]
            if ch == "1":
                pla.on_sets[out].add(cube)
            elif ch in ("-", "2"):
                if pla_type in ("fd", "fr"):
                    pla.dc_sets[out].add(cube)
            elif ch in ("0", "~"):
                continue
            else:
                raise PlaError(f"bad output character {ch!r}")
    return pla


def write_pla(pla: Pla) -> str:
    """Serialize (ON-sets only, type f)."""
    lines = [
        f".i {pla.num_inputs}",
        f".o {pla.num_outputs}",
        ".ilb " + " ".join(pla.input_names),
        ".ob " + " ".join(pla.output_names),
        ".type f",
    ]
    # group rows by input cube
    by_cube: Dict[str, List[str]] = {}
    for pos, out in enumerate(pla.output_names):
        for cube in pla.on_sets[out].cubes:
            key = cube.to_string()
            row = by_cube.setdefault(key, ["0"] * pla.num_outputs)
            row[pos] = "1"
    lines.append(f".p {len(by_cube)}")
    for key in sorted(by_cube):
        lines.append(f"{key} {''.join(by_cube[key])}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def pla_from_function(
    name: str,
    num_inputs: int,
    num_outputs: int,
    func,
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
) -> Pla:
    """Tabulate a Python function into a PLA.

    ``func(x: int) -> int`` maps an input word to an output word (LSB =
    input/output 0).  Exhaustive -- intended for the arithmetic MCNC
    stand-ins (<= ~12 inputs).
    """
    if num_inputs > 16:
        raise ValueError("pla_from_function is exhaustive; too many inputs")
    ins = list(input_names) if input_names else [
        f"x{i}" for i in range(num_inputs)
    ]
    outs = list(output_names) if output_names else [
        f"y{i}" for i in range(num_outputs)
    ]
    pla = Pla(name, ins, outs)
    for out in outs:
        pla.on_sets[out] = Cover(num_inputs)
        pla.dc_sets[out] = Cover(num_inputs)
    for x in range(1 << num_inputs):
        y = func(x)
        if y < 0 or y >= (1 << num_outputs):
            raise ValueError(f"func({x}) = {y} out of range")
        if y == 0:
            continue
        cube = Cube.from_assignment(
            num_inputs, {i: (x >> i) & 1 for i in range(num_inputs)}
        )
        for pos in range(num_outputs):
            if (y >> pos) & 1:
                pla.on_sets[outs[pos]].add(cube)
    return pla
