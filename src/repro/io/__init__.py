"""Netlist IO: BLIF and PLA."""

from .blif import (
    BlifError,
    parse_blif,
    parse_blif_sequential,
    write_blif,
    write_blif_sequential,
)
from .pla import Pla, PlaError, parse_pla, pla_from_function, write_pla
from .verilog import write_verilog

__all__ = [
    "BlifError",
    "write_verilog",
    "Pla",
    "PlaError",
    "parse_blif",
    "parse_blif_sequential",
    "parse_pla",
    "write_blif_sequential",
    "pla_from_function",
    "write_blif",
    "write_pla",
]
