"""Structural Verilog export.

Emits a gate-level module using Verilog primitive gates (and/or/nand/
nor/not/buf/xor/xnor), the lingua franca for handing circuits to
commercial timing or test tools.  Names are sanitized to Verilog
identifiers; a comment records each gate's modeled delay (primitive
delays are intentionally *not* emitted -- downstream STA uses its own
library, exactly the situation Section II of the paper discusses).
"""

from __future__ import annotations

import re
from typing import Dict

from ..network import Circuit, GateType

_PRIMITIVE = {
    GateType.AND: "and",
    GateType.NAND: "nand",
    GateType.OR: "or",
    GateType.NOR: "nor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
}

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _sanitize(name: str, used: Dict[str, str], key: str) -> str:
    if key in used:
        return used[key]
    candidate = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not candidate or not _IDENT.match(candidate):
        candidate = f"n_{candidate}" if candidate else "n"
    base = candidate
    suffix = 1
    taken = set(used.values())
    while candidate in taken:
        candidate = f"{base}_{suffix}"
        suffix += 1
    used[key] = candidate
    return candidate


def write_verilog(circuit: Circuit, module: str = None) -> str:
    """Serialize to a structural Verilog module."""
    used: Dict[str, str] = {}
    names: Dict[int, str] = {}
    for gid, gate in circuit.gates.items():
        if gate.gtype is GateType.INPUT:
            base = gate.name or f"pi{gid}"
        elif gate.gtype is GateType.OUTPUT:
            base = gate.name or f"po{gid}"
        else:
            base = f"w{gid}"
        names[gid] = _sanitize(base, used, f"g{gid}")

    module_name = _sanitize(
        module or circuit.name or "top", used, "__module__"
    )
    inputs = [names[g] for g in circuit.inputs]
    outputs = [names[g] for g in circuit.outputs]
    ports = ", ".join(inputs + outputs)
    lines = [f"module {module_name}({ports});"]
    if inputs:
        lines.append(f"  input {', '.join(inputs)};")
    if outputs:
        lines.append(f"  output {', '.join(outputs)};")
    wires = [
        names[gid]
        for gid, gate in circuit.gates.items()
        if gate.gtype not in (GateType.INPUT, GateType.OUTPUT)
    ]
    if wires:
        lines.append(f"  wire {', '.join(sorted(wires))};")
    lines.append("")
    instance = 0
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            continue
        ins = [names[s] for s in circuit.fanin_gates(gid)]
        out = names[gid]
        if gate.gtype is GateType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
            continue
        if gate.gtype is GateType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
            continue
        if gate.gtype is GateType.OUTPUT:
            lines.append(f"  assign {out} = {ins[0]};")
            continue
        primitive = _PRIMITIVE[gate.gtype]
        instance += 1
        comment = f"  // d={gate.delay:g}" if gate.delay else ""
        lines.append(
            f"  {primitive} u{instance} ({out}, {', '.join(ins)});"
            f"{comment}"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
