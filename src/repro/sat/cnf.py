"""CNF container with DIMACS-style integer literals.

Variables are positive integers 1..n; a literal is ``+v`` or ``-v``.
:class:`CNF` is a thin builder shared by the Tseitin encoder, the
sensitization checkers and SAT-ATPG.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class CNF:
    """A growable CNF formula."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; empty clauses are legal (formula becomes UNSAT)."""
        clause = tuple(literals)
        for lit in clause:
            var = abs(lit)
            if var == 0:
                raise ValueError("literal 0 is reserved")
            if var > self.num_vars:
                self.num_vars = var
        self.clauses.append(clause)

    def add_unit(self, literal: int) -> None:
        self.add_clause((literal,))

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def copy(self) -> "CNF":
        other = CNF()
        other.num_vars = self.num_vars
        other.clauses = list(self.clauses)
        return other

    def evaluate(self, assignment: Dict[int, bool]) -> Optional[bool]:
        """Evaluate under a (possibly partial) assignment.

        Returns True/False if determined, None if undetermined.  Used as a
        test oracle against the solver.
        """
        undetermined = False
        for clause in self.clauses:
            satisfied = False
            open_lits = False
            for lit in clause:
                val = assignment.get(abs(lit))
                if val is None:
                    open_lits = True
                elif val == (lit > 0):
                    satisfied = True
                    break
            if not satisfied:
                if open_lits:
                    undetermined = True
                else:
                    return False
        return None if undetermined else True

    def to_dimacs(self) -> str:
        """Serialize to DIMACS CNF format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF text."""
        cnf = cls()
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(("c", "p", "%")):
                continue
            lits = [int(tok) for tok in line.split()]
            if lits and lits[-1] == 0:
                lits = lits[:-1]
            if lits:
                cnf.add_clause(lits)
        return cnf

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"<CNF {self.num_vars} vars, {len(self.clauses)} clauses>"
