"""Tseitin encoding of circuits into CNF.

Each gate output becomes a CNF variable; the clauses constrain the
variable to equal the gate function of its fanin variables.  The encoding
is shared by the equivalence checker, the static sensitization check
(Definition 4.11 reduces to SAT on the circuit clauses plus unit
constraints on side-inputs) and SAT-based ATPG.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..network import Circuit, GateType
from .cnf import CNF


class CircuitEncoder:
    """Encodes a circuit into a :class:`CNF`, keeping the gid -> var map.

    Multiple circuits may be encoded into one CNF (miters); PIs can be
    shared by passing ``input_vars``.
    """

    def __init__(self, cnf: Optional[CNF] = None) -> None:
        self.cnf = cnf if cnf is not None else CNF()

    def encode(
        self,
        circuit: Circuit,
        input_vars: Optional[Dict[int, int]] = None,
        gate_filter: Optional[Iterable[int]] = None,
    ) -> Dict[int, int]:
        """Encode ``circuit`` (or the sub-DAG ``gate_filter``) and return
        the gid -> variable map.

        ``input_vars`` maps PI gid -> existing variable (for sharing PIs
        between the two halves of a miter).  Gates outside ``gate_filter``
        (when given) are skipped; the filter must be fanin-closed.
        """
        var: Dict[int, int] = {}
        allowed = set(gate_filter) if gate_filter is not None else None
        for gid in circuit.topological_order():
            if allowed is not None and gid not in allowed:
                continue
            gate = circuit.gates[gid]
            if gate.gtype is GateType.INPUT and input_vars and gid in input_vars:
                var[gid] = input_vars[gid]
                continue
            v = self.cnf.new_var()
            var[gid] = v
            ins = [var[circuit.conns[c].src] for c in gate.fanin]
            self._constrain(gate.gtype, v, ins)
        return var

    def _constrain(self, gtype: GateType, out: int, ins: List[int]) -> None:
        cnf = self.cnf
        if gtype is GateType.INPUT:
            return  # free variable
        if gtype is GateType.CONST0:
            cnf.add_unit(-out)
            return
        if gtype is GateType.CONST1:
            cnf.add_unit(out)
            return
        if gtype in (GateType.BUF, GateType.OUTPUT):
            (a,) = ins
            cnf.add_clause((-a, out))
            cnf.add_clause((a, -out))
            return
        if gtype is GateType.NOT:
            (a,) = ins
            cnf.add_clause((a, out))
            cnf.add_clause((-a, -out))
            return
        if gtype in (GateType.AND, GateType.NAND):
            o = out if gtype is GateType.AND else -out
            for a in ins:
                cnf.add_clause((-o, a))
            cnf.add_clause(tuple(-a for a in ins) + (o,))
            return
        if gtype in (GateType.OR, GateType.NOR):
            o = out if gtype is GateType.OR else -out
            for a in ins:
                cnf.add_clause((o, -a))
            cnf.add_clause(tuple(ins) + (-o,))
            return
        if gtype in (GateType.XOR, GateType.XNOR):
            acc = ins[0]
            for nxt in ins[1:-1]:
                aux = cnf.new_var()
                self._xor2(acc, nxt, aux)
                acc = aux
            if gtype is GateType.XOR:
                self._xor2(acc, ins[-1], out)
            else:
                aux = cnf.new_var()
                self._xor2(acc, ins[-1], aux)
                cnf.add_clause((aux, out))
                cnf.add_clause((-aux, -out))
            return
        raise ValueError(f"cannot encode {gtype}")

    def _xor2(self, a: int, b: int, out: int) -> None:
        cnf = self.cnf
        cnf.add_clause((-a, -b, -out))
        cnf.add_clause((a, b, -out))
        cnf.add_clause((-a, b, out))
        cnf.add_clause((a, -b, out))


def encode_circuit(circuit: Circuit) -> "EncodedCircuit":
    """One-shot encoding, returning the CNF and the variable map."""
    enc = CircuitEncoder()
    var = enc.encode(circuit)
    return EncodedCircuit(enc.cnf, var)


class EncodedCircuit:
    """A circuit's CNF plus its gid -> variable map."""

    def __init__(self, cnf: CNF, var: Dict[int, int]) -> None:
        self.cnf = cnf
        self.var = var

    def lit(self, gid: int, value: int) -> int:
        """The literal asserting gate ``gid`` carries ``value``."""
        v = self.var[gid]
        return v if value else -v
