"""A CDCL SAT solver (conflict-driven clause learning).

Implements the classic architecture -- two-watched-literal propagation,
1UIP conflict analysis with clause learning, VSIDS-style activity decay,
phase saving, geometric restarts, and *assumptions* so that one solver
instance per circuit can answer many incremental queries (each ATPG or
sensitization query is a solve-under-assumptions call).

This is deliberately self-contained: the reproduction builds every
substrate from scratch, and the circuits involved (carry-skip adders,
MCNC-scale benchmarks) are comfortably within reach of a pure-Python CDCL.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cnf import CNF

TRUE, FALSE, UNASSIGNED = 1, 0, -1

#: Process-wide count of :meth:`Solver.solve` invocations.  Telemetry
#: (``repro.engine.telemetry``) attributes SAT effort per stage through
#: :class:`SolveCallTracker` deltas; each worker process counts its own.
_SOLVE_CALLS = 0


def solve_calls() -> int:
    """Total ``Solver.solve`` invocations in this process so far."""
    return _SOLVE_CALLS


def reset_solve_calls() -> None:
    """Zero the process-wide counter (test isolation only).

    Consumers must never attribute work by differencing two raw
    :func:`solve_calls` reads across a possible reset; they hold a
    :class:`SolveCallTracker`, whose deltas stay correct (clamped at
    zero) even when the counter is reset mid-flight.
    """
    global _SOLVE_CALLS
    _SOLVE_CALLS = 0


class SolveCallTracker:
    """Snapshot/delta view of the solve-call counter.

    The engine opens one tracker per stage attempt, so nested stages,
    retries, and parallel workers (each process has its own counter)
    all report *their own* call counts rather than a global read.  Also
    usable as a context manager::

        with SolveCallTracker() as tracker:
            ...solve things...
        stage_calls = tracker.calls
    """

    def __init__(self) -> None:
        self._mark = solve_calls()

    def reset(self) -> None:
        """Restart the delta window at the current counter value."""
        self._mark = solve_calls()

    @property
    def calls(self) -> int:
        """Solve calls in this process since construction/reset."""
        return max(0, solve_calls() - self._mark)

    def __enter__(self) -> "SolveCallTracker":
        self.reset()
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class Solver:
    """CDCL solver over integer literals (DIMACS convention).

    ``learned_cap`` bounds the learned-clause database: when the number
    of learned clauses exceeds the cap, an activity-ordered reduction
    (at root level) drops the less useful half so long-lived incremental
    solvers -- one epoch solver answering hundreds of assumption-gated
    ATPG queries -- do not grow the clause DB unboundedly.  ``None``
    (the default) keeps the classic unbounded behaviour.  Reductions are
    tallied in ``stats["learned_kept"]`` / ``stats["learned_dropped"]``.
    """

    def __init__(
        self,
        cnf: Optional[CNF] = None,
        learned_cap: Optional[int] = None,
    ) -> None:
        self._num_vars = 0
        self._clauses: List[List[int]] = []
        self._learned: List[List[int]] = []
        self._watches: Dict[int, List[List[int]]] = {}
        self._assign: List[int] = [UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._phase: List[bool] = [False]
        self._preferred: List[int] = []
        self._ok = True
        self.learned_cap = learned_cap
        self.stats = {
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "learned_kept": 0,
            "learned_dropped": 0,
        }
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------ #
    # problem construction
    # ------------------------------------------------------------------ #

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self._num_vars += 1
            self._assign.append(UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)

    def new_var(self) -> int:
        self._ensure_var(self._num_vars + 1)
        return self._num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula is now trivially
        UNSAT.  Must be called at decision level 0."""
        assert not self._trail_lim, "add_clause only at root level"
        if not self._ok:
            return False
        seen = set()
        clause: List[int] = []
        for lit in literals:
            self._ensure_var(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._value(lit)
            if val == TRUE:
                return True  # already satisfied at root
            if val == FALSE:
                continue  # falsified at root: drop literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        self._clauses.append(clause)
        self._watch(clause)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        self._ensure_var(cnf.num_vars)
        ok = True
        for clause in cnf.clauses:
            ok = self.add_clause(clause) and ok
        return ok and self._ok

    def _watch(self, clause: List[int]) -> None:
        self._watches.setdefault(-clause[0], []).append(clause)
        self._watches.setdefault(-clause[1], []).append(clause)

    # ------------------------------------------------------------------ #
    # assignment machinery
    # ------------------------------------------------------------------ #

    def _value(self, lit: int) -> int:
        val = self._assign[abs(lit)]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val if lit > 0 else 1 - val

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        val = self._value(lit)
        if val != UNASSIGNED:
            return val == TRUE
        var = abs(lit)
        self._assign[var] = TRUE if lit > 0 else FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            kept: List[List[int]] = []
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                # ensure the falsified literal is clause[1]
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == TRUE:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(
                            -clause[1], []
                        ).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if not self._enqueue(first, clause):
                    # conflict: keep remaining watchers, report
                    kept.extend(watchers[i:])
                    self._watches[lit] = kept
                    return clause
            self._watches[lit] = kept
        return None

    # ------------------------------------------------------------------ #
    # conflict analysis
    # ------------------------------------------------------------------ #

    def bump_variable(self, var: int, amount: float = 1.0) -> None:
        """Raise a variable's decision priority.

        Callers with domain knowledge use this as a branching hint --
        e.g. circuit-SAT callers bump primary-input variables so the
        search assigns free inputs and lets propagation evaluate the
        netlist, mirroring PODEM's branch-on-PIs insight.
        """
        self._ensure_var(var)
        self._activity[var] += amount * self._var_inc

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """1UIP analysis: returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = None
        reason: Optional[List[int]] = conflict
        index = len(self._trail)
        cur_level = len(self._trail_lim)
        while True:
            assert reason is not None
            for q in reason:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] == cur_level:
                        counter += 1
                    else:
                        learned.append(q)
            # pick next literal on trail at current level
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            seen[abs(lit)] = False
            if counter == 0:
                break
            reason = self._reason[abs(lit)]
        learned[0] = -lit
        if len(learned) == 1:
            return learned, 0
        # backjump to the second-highest level in the clause
        max_i = 1
        for i in range(2, len(learned)):
            if self._level[abs(learned[i])] > self._level[abs(learned[max_i])]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self._level[abs(learned[1])]

    def _clause_score(self, clause: List[int]) -> float:
        """Activity proxy for a learned clause: mean variable activity.

        The solver learns clauses over the variables driving recent
        conflicts, so high-activity variables mark clauses still pulling
        their weight; VSIDS decay ages out stale ones automatically.
        """
        return sum(self._activity[abs(lit)] for lit in clause) / len(clause)

    def _reduce_learned(self) -> None:
        """Activity-ordered learned-clause deletion (root level only).

        Keeps every short clause (length <= 2: cheap and powerful), the
        highest-scoring half of the cap among the rest, and any clause
        currently serving as a reason; drops the remainder and purges
        them from the watch lists.
        """
        cap = self.learned_cap
        if cap is None or len(self._learned) <= cap:
            return
        assert not self._trail_lim, "learned reduction only at root level"
        reasons = {id(r) for r in self._reason if r is not None}
        candidates = [
            (i, c)
            for i, c in enumerate(self._learned)
            if len(c) > 2 and id(c) not in reasons
        ]
        # highest score first; ties broken toward younger clauses
        candidates.sort(key=lambda p: (-self._clause_score(p[1]), -p[0]))
        drop = {id(c) for _, c in candidates[max(1, cap // 2):]}
        if not drop:
            return
        self._learned = [c for c in self._learned if id(c) not in drop]
        for lit, watchers in self._watches.items():
            self._watches[lit] = [c for c in watchers if id(c) not in drop]
        self.stats["learned_dropped"] += len(drop)
        self.stats["learned_kept"] += len(self._learned)

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._phase[var] = self._assign[var] == TRUE
            self._assign[var] = UNASSIGNED
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def prefer_variables(self, variables) -> None:
        """Restrict-first decision ordering.

        While any of these variables is unassigned, decisions pick among
        them (by activity); other variables are only decided once every
        preferred one is set.  Circuit-SAT callers pass the primary-input
        variables: once all PIs are assigned, unit propagation evaluates
        the whole netlist, so the search space collapses to the PI cube
        -- PODEM's branch-on-PIs insight transplanted into CDCL.
        """
        self._preferred = sorted(set(variables))
        for var in self._preferred:
            self._ensure_var(var)

    def _decide(self) -> int:
        best, best_act = 0, -1.0
        for var in self._preferred:
            if self._assign[var] == UNASSIGNED:
                act = self._activity[var]
                if act > best_act:
                    best, best_act = var, act
        if best == 0:
            for var in range(1, self._num_vars + 1):
                if self._assign[var] == UNASSIGNED:
                    act = self._activity[var]
                    if act > best_act:
                        best, best_act = var, act
        if best == 0:
            return 0
        return best if self._phase[best] else -best

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
    ) -> Optional[bool]:
        """Solve under assumptions.

        Returns True (SAT), False (UNSAT under these assumptions), or None
        if ``conflict_limit`` was exhausted.  After True, :meth:`model`
        gives a satisfying assignment.
        """
        global _SOLVE_CALLS
        _SOLVE_CALLS += 1
        if not self._ok:
            return False
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False
        self._reduce_learned()
        conflicts_seen = 0
        restart_limit = 100
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_seen += 1
                if conflict_limit is not None and conflicts_seen > conflict_limit:
                    self._backtrack(0)
                    return None
                if not self._trail_lim:
                    return False  # conflict at root: truly UNSAT
                if len(self._trail_lim) <= len(assumptions):
                    # conflict forced purely by assumptions
                    self._backtrack(0)
                    return False
                learned, back_level = self._analyze(conflict)
                back_level = max(back_level, self._assumption_level())
                self._backtrack(back_level)
                if len(learned) == 1:
                    self._backtrack(0)
                    if not self._enqueue(learned[0], None):
                        self._ok = False
                        return False
                    # re-establish assumptions on next iterations
                else:
                    self._learned.append(learned)
                    self._watch(learned)
                    self._enqueue(learned[0], learned)
                self._var_inc /= self._var_decay
                if conflicts_seen >= restart_limit:
                    restart_limit = int(restart_limit * 1.5)
                    self._backtrack(0)
                    self._reduce_learned()
                continue
            # no conflict: extend assumptions, then decide
            if len(self._trail_lim) < len(assumptions):
                lit = assumptions[len(self._trail_lim)]
                self._ensure_var(abs(lit))
                val = self._value(lit)
                if val == FALSE:
                    self._backtrack(0)
                    return False
                self._trail_lim.append(len(self._trail))
                if val == UNASSIGNED:
                    self._enqueue(lit, None)
                continue
            lit = self._decide()
            if lit == 0:
                return True  # all variables assigned
            self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    def _assumption_level(self) -> int:
        return 0

    def reset_to_root(self) -> None:
        """Backtrack to decision level 0.

        Incremental callers (SAT sweeping asks hundreds of small
        queries of one solver) must return to the root level before
        :meth:`add_clause`, since the trail still holds the last
        solve's decisions after a SAT answer.
        """
        self._backtrack(0)

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment found by the last True solve."""
        return {
            var: self._assign[var] == TRUE
            for var in range(1, self._num_vars + 1)
            if self._assign[var] != UNASSIGNED
        }


def solve_cnf(
    cnf: CNF, assumptions: Sequence[int] = ()
) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """One-shot convenience: returns (is_sat, model or None)."""
    solver = Solver(cnf)
    result = solver.solve(assumptions)
    if result:
        return True, solver.model()
    return False, None
