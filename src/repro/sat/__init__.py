"""SAT substrate: CNF, CDCL solver, Tseitin encoding, equivalence."""

from .cnf import CNF
from .solver import (
    Solver,
    SolveCallTracker,
    reset_solve_calls,
    solve_calls,
    solve_cnf,
)
from .tseitin import CircuitEncoder, EncodedCircuit, encode_circuit
from .equivalence import (
    EquivalenceResult,
    assert_equivalent,
    check_equivalence,
)

__all__ = [
    "CNF",
    "CircuitEncoder",
    "EncodedCircuit",
    "EquivalenceResult",
    "SolveCallTracker",
    "Solver",
    "assert_equivalent",
    "check_equivalence",
    "encode_circuit",
    "reset_solve_calls",
    "solve_calls",
    "solve_cnf",
]
