"""Miter-based combinational equivalence checking.

The KMS algorithm's correctness rests on every transformation preserving
circuit function (Theorems 7.1 and 7.2).  The *checked* mode of
:func:`repro.core.kms.kms` verifies this after every step with the miter
built here: both circuits share PI variables, each pair of same-named
outputs feeds an XOR, and the OR of all XORs is asserted true.  UNSAT
means equivalent; a model is a counterexample input vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..network import Circuit
from .cnf import CNF
from .solver import Solver
from .tseitin import CircuitEncoder


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: PI name -> 0/1 counterexample (only when not equivalent).
    counterexample: Optional[Dict[str, int]] = None
    #: name of an output that differs under the counterexample.
    differing_output: Optional[str] = None


def check_equivalence(a: Circuit, b: Circuit) -> EquivalenceResult:
    """Prove or refute functional equivalence of two circuits.

    Circuits are matched by PI and PO *names*; gid numbering is free to
    differ (KMS renumbers aggressively).  Raises ``ValueError`` when the
    interfaces differ -- that is a harness bug, not an inequivalence.
    """
    a_pis = {a.gates[g].name: g for g in a.inputs}
    b_pis = {b.gates[g].name: g for g in b.inputs}
    if set(a_pis) != set(b_pis):
        raise ValueError(
            f"PI mismatch: {sorted(set(a_pis) ^ set(b_pis))}"
        )
    a_pos = {a.gates[g].name: g for g in a.outputs}
    b_pos = {b.gates[g].name: g for g in b.outputs}
    if set(a_pos) != set(b_pos):
        raise ValueError(
            f"PO mismatch: {sorted(set(a_pos) ^ set(b_pos))}"
        )

    enc = CircuitEncoder()
    var_a = enc.encode(a)
    shared = {b_pis[name]: var_a[a_pis[name]] for name in a_pis}
    var_b = enc.encode(b, input_vars=shared)

    cnf = enc.cnf
    diff_lits = []
    diff_of_output: Dict[int, str] = {}
    for name in a_pos:
        va, vb = var_a[a_pos[name]], var_b[b_pos[name]]
        d = cnf.new_var()
        # d <-> (va xor vb)
        cnf.add_clause((-va, -vb, -d))
        cnf.add_clause((va, vb, -d))
        cnf.add_clause((-va, vb, d))
        cnf.add_clause((va, -vb, d))
        diff_lits.append(d)
        diff_of_output[d] = name
    cnf.add_clause(diff_lits)

    solver = Solver(cnf)
    if not solver.solve():
        return EquivalenceResult(equivalent=True)
    model = solver.model()
    cex = {
        name: int(model.get(var_a[gid], False))
        for name, gid in a_pis.items()
    }
    differing = next(
        (diff_of_output[d] for d in diff_lits if model.get(d)), None
    )
    return EquivalenceResult(
        equivalent=False, counterexample=cex, differing_output=differing
    )


def assert_equivalent(a: Circuit, b: Circuit) -> None:
    """Raise ``AssertionError`` with the counterexample if not equivalent."""
    result = check_equivalence(a, b)
    if not result.equivalent:
        raise AssertionError(
            f"circuits differ on output {result.differing_output!r} "
            f"under input {result.counterexample!r}"
        )
