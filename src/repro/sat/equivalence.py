"""Combinational equivalence checking: fraig-first, CNF miter fallback.

The KMS algorithm's correctness rests on every transformation preserving
circuit function (Theorems 7.1 and 7.2), which makes equivalence
checking the verify pipeline's hot path.  Two complete engines share
one result type:

* ``method="fraig"`` (default) -- both circuits are encoded into *one*
  structurally-hashed AIG with shared PIs (:func:`repro.aig.miter_aig`).
  Cones the circuits share merge at node-creation time, so equivalence
  is often decided **without any SAT call**: structurally (the output
  literals coincide -- KMS duplication and absorption-shaped redundancy
  removal collapse here), by bit-parallel random simulation (any
  differing pattern is a counterexample), or by a node-capped BDD build
  over the miter cones (canonical forms decide both ways).  Only when
  all three abstain does the checker issue a single incremental SAT
  call over the unresolved output pairs -- the same one-call budget as
  the CNF path, on a smaller, hashed formula.  An optional full SAT
  sweep (``sweep=True``) fraigs the miter first for pathological cases
  where that one monolithic call would be too hard.

* ``method="cnf"`` -- the classic whole-circuit Tseitin miter: every
  pair of same-named outputs feeds an XOR, the OR of all XORs is
  asserted, one solver call decides.  Kept verbatim as the A/B baseline
  the fraig path is telemetry-compared against (``repro bench
  --verify``) and as the engine of last resort.

Verdicts are identical by construction -- both engines are complete --
and the fraig path never issues *more* solve calls than the CNF path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..network import Circuit
from .solver import Solver
from .tseitin import CircuitEncoder

#: 64-bit words of random patterns the fraig path simulates before
#: reaching for heavier engines.
SIM_WORDS = 4

#: BDD growth budget (total nodes) before the BDD engine abstains.
BDD_NODE_CAP = 50_000


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: PI name -> 0/1 counterexample (only when not equivalent).
    counterexample: Optional[Dict[str, int]] = None
    #: name of an output that differs under the counterexample.
    differing_output: Optional[str] = None


def check_equivalence(
    a: Circuit, b: Circuit, method: str = "fraig", sweep: bool = False
) -> EquivalenceResult:
    """Prove or refute functional equivalence of two circuits.

    Circuits are matched by PI and PO *names*; gid numbering is free to
    differ (KMS renumbers aggressively).  Raises ``ValueError`` when the
    interfaces differ -- that is a harness bug, not an inequivalence.
    """
    if method == "fraig":
        return _check_fraig(a, b, sweep=sweep)
    if method == "cnf":
        return _check_cnf(a, b)
    raise ValueError(f"unknown equivalence method {method!r}")


# ---------------------------------------------------------------------- #
# fraig-first engine
# ---------------------------------------------------------------------- #

def _check_fraig(a: Circuit, b: Circuit, sweep: bool = False) -> EquivalenceResult:
    from ..aig import fraig as fraig_fn, miter_aig
    from ..aig.fraig import SweepSolver

    aig, pairs = miter_aig(a, b)
    unresolved = {
        name: lits for name, lits in sorted(pairs.items())
        if lits[0] != lits[1]
    }
    if not unresolved:
        return EquivalenceResult(equivalent=True)

    # bit-parallel random simulation: a differing pattern settles it
    rng = random.Random(0xE9)
    mask = (1 << 64) - 1
    for _ in range(SIM_WORDS):
        patterns = aig.random_patterns(64, rng)
        values = aig.simulate(patterns, 64)
        for name, (la, lb) in unresolved.items():
            diff = (aig.lit_value(values, la, mask)
                    ^ aig.lit_value(values, lb, mask))
            if diff:
                bit = (diff & -diff).bit_length() - 1
                cex = {
                    aig.input_name(node): (patterns.get(node, 0) >> bit) & 1
                    for node in aig.inputs
                }
                return EquivalenceResult(
                    equivalent=False, counterexample=cex,
                    differing_output=name,
                )

    # node-capped BDD: canonical forms decide both ways at zero SAT cost
    verdict = _check_bdd(aig, unresolved)
    if verdict is not None:
        return verdict

    if sweep:
        result = fraig_fn(aig, conflict_limit=1000)
        swept = {
            name: (result.map_lit(la), result.map_lit(lb))
            for name, (la, lb) in unresolved.items()
        }
        unresolved = {
            name: lits for name, lits in swept.items() if lits[0] != lits[1]
        }
        if not unresolved:
            return EquivalenceResult(equivalent=True)
        aig = result.aig

    # one incremental SAT call over every unresolved pair
    sweeper = SweepSolver(aig, conflict_limit=None)
    distinct, pattern = sweeper.solve_any_distinct(list(unresolved.values()))
    if not distinct:
        return EquivalenceResult(equivalent=True)
    full = {node: pattern.get(node, 0) for node in aig.inputs}
    values = aig.simulate(full, 1)
    differing = next(
        (
            name for name, (la, lb) in unresolved.items()
            if aig.lit_value(values, la, 1) != aig.lit_value(values, lb, 1)
        ),
        None,
    )
    cex = {aig.input_name(node): full[node] & 1 for node in aig.inputs}
    return EquivalenceResult(
        equivalent=False, counterexample=cex, differing_output=differing
    )


def _check_bdd(aig, unresolved) -> Optional[EquivalenceResult]:
    """Decide all unresolved pairs with a node-capped BDD build.

    Returns None when the cap is hit (the engine abstains); otherwise a
    definitive result, with a counterexample mined from the first
    differing pair's XOR.
    """
    from ..bdd import BDD

    bdd = BDD(aig.num_inputs())
    var_index = {node: i for i, node in enumerate(aig.inputs)}
    needed = [lit for lits in unresolved.values() for lit in lits]
    funcs: Dict[int, int] = {0: bdd.ZERO}

    def lit_func(lit: int) -> int:
        from ..aig import lit_node, lit_phase

        f = funcs[lit_node(lit)]
        return bdd.negate(f) if lit_phase(lit) else f

    for node in aig.cone(needed):
        if node == 0:
            continue
        if aig.is_input(node):
            funcs[node] = bdd.var(var_index[node])
            continue
        f0, f1 = aig.fanins(node)
        funcs[node] = bdd.apply_and(lit_func(f0), lit_func(f1))
        if bdd.node_count > BDD_NODE_CAP:
            return None
    for name, (la, lb) in unresolved.items():
        fa, fb = lit_func(la), lit_func(lb)
        if fa == fb:
            continue
        assignment = bdd.any_sat(bdd.apply_xor(fa, fb)) or {}
        cex = {
            aig.input_name(node): assignment.get(var_index[node], 0)
            for node in aig.inputs
        }
        return EquivalenceResult(
            equivalent=False, counterexample=cex, differing_output=name
        )
    return EquivalenceResult(equivalent=True)


# ---------------------------------------------------------------------- #
# CNF miter engine (the A/B baseline)
# ---------------------------------------------------------------------- #

def _check_cnf(a: Circuit, b: Circuit) -> EquivalenceResult:
    a_pis = {a.gates[g].name: g for g in a.inputs}
    b_pis = {b.gates[g].name: g for g in b.inputs}
    if set(a_pis) != set(b_pis):
        raise ValueError(
            f"PI mismatch: {sorted(set(a_pis) ^ set(b_pis))}"
        )
    a_pos = {a.gates[g].name: g for g in a.outputs}
    b_pos = {b.gates[g].name: g for g in b.outputs}
    if set(a_pos) != set(b_pos):
        raise ValueError(
            f"PO mismatch: {sorted(set(a_pos) ^ set(b_pos))}"
        )

    enc = CircuitEncoder()
    var_a = enc.encode(a)
    shared = {b_pis[name]: var_a[a_pis[name]] for name in a_pis}
    var_b = enc.encode(b, input_vars=shared)

    cnf = enc.cnf
    diff_lits = []
    diff_of_output: Dict[int, str] = {}
    for name in a_pos:
        va, vb = var_a[a_pos[name]], var_b[b_pos[name]]
        d = cnf.new_var()
        # d <-> (va xor vb)
        cnf.add_clause((-va, -vb, -d))
        cnf.add_clause((va, vb, -d))
        cnf.add_clause((-va, vb, d))
        cnf.add_clause((va, -vb, d))
        diff_lits.append(d)
        diff_of_output[d] = name
    cnf.add_clause(diff_lits)

    solver = Solver(cnf)
    if not solver.solve():
        return EquivalenceResult(equivalent=True)
    model = solver.model()
    cex = {
        name: int(model.get(var_a[gid], False))
        for name, gid in a_pis.items()
    }
    differing = next(
        (diff_of_output[d] for d in diff_lits if model.get(d)), None
    )
    return EquivalenceResult(
        equivalent=False, counterexample=cex, differing_output=differing
    )


def assert_equivalent(a: Circuit, b: Circuit) -> None:
    """Raise ``AssertionError`` with the counterexample if not equivalent."""
    result = check_equivalence(a, b)
    if not result.equivalent:
        raise AssertionError(
            f"circuits differ on output {result.differing_output!r} "
            f"under input {result.counterexample!r}"
        )
