"""repro.net — arena-based struct-of-arrays netlist (source of truth).

See :mod:`repro.net.arena` for the full story; the object
:class:`~repro.network.circuit.Circuit` remains the import/export
boundary while the arena's parallel arrays feed simulation,
fingerprinting, and cone queries at O(touched) maintenance cost.
"""

from .arena import (  # noqa: F401
    ARENA_COUNTERS,
    BACKEND_ENV,
    LEGACY_ENV,
    NetArena,
    attach_arena,
    detach_arena,
    get_arena,
    net_enabled,
    resolve_backend,
)
