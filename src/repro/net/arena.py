"""Arena-based struct-of-arrays netlist: the source of truth for the
KMS loop's hot consumers.

PR 4's :class:`~repro.sim.kernel.CompiledCircuit` proved flat parallel
arrays beat the object graph ~50x for simulation, but it stayed a
*derived* view rebuilt from scratch whenever the object
:class:`~repro.network.circuit.Circuit` mutated.  This module inverts
that relationship: a :class:`NetArena` mirrors every structural
primitive of its circuit **in place** through mutation hooks, so the
flat arrays are maintained at O(touched) cost per transform instead of
O(rebuild) per consumer.  The object ``Circuit`` remains the lossless
import/export boundary (BLIF/JSON/serve protocol see only objects); the
arrays are what simulation, fingerprinting, and cone queries read.

Layout (slot-indexed parallel arrays; a *slot* is an arena-internal
index, stable between compactions, mapped to/from circuit gids):

* ``gt[slot]``      -- gate-type code (:data:`GT_CODE`);
* ``evalop[slot]``  -- simulation opcode (OUTPUT markers evaluate as
  BUF, mirroring :mod:`repro.sim.kernel`);
* ``gdelay[slot]``  -- gate delay ``d(g)``;
* ``arrival[slot]`` -- primary-input arrival time (0.0 elsewhere);
* ``rank[slot]``    -- position in the maintained topological order;
* fanin/fanout      -- per-slot pin lists of connection slots, with a
  read-optimized CSR view (:meth:`NetArena.fanin_csr` /
  :meth:`fanout_csr`) materialized lazily;
* ``csrc/cdst/cdelay/cpin[cslot]`` -- connection endpoints (slots),
  delay ``d(c)``, and pin index on the destination gate.

Scalar arrays are numpy-backed when numpy is importable (selectable via
``REPRO_NET_BACKEND`` = ``python`` / ``numpy`` / ``auto``, mirroring the
PR-4 simulation backend switch); the pure-Python fallback is a plain
list.  Either backend holds bit-identical values.

Three maintenance mechanisms make the arena cheap to keep fresh:

* **free-list GC** -- removed gates/connections push their slots onto a
  free list for reuse; when dead slots exceed half the arena (and a
  minimum floor), :meth:`NetArena.compact` rebuilds the arrays densely
  in the style of CaDiCaL's ``reduce``/arena collection (SNIPPETS.md
  #1): one sweep, slots renumbered in topological order, holes gone;
* **incremental topological order** -- the order is repaired on edge
  insertion with the Pearce-Kelly algorithm (discover the affected
  region between the endpoints' ranks, reorder only that window), so a
  whole KMS iteration costs order-maintenance proportional to the
  touched region.  Edge *removals* never invalidate a topological
  order, so they are free;
* **incremental Merkle fingerprints** -- per-gate content digests
  (bit-identical to :func:`repro.engine.hashing.gate_fingerprints`) are
  cached and re-hashed only in the fanout cone of hook-recorded dirty
  gates with early cutoff on unchanged digests, so
  :func:`repro.engine.hashing.circuit_fingerprint` no longer re-walks
  the object graph.

Deterministic counters (exported through ``KmsResult`` and gated by the
``arena`` row of the CI perf-gate matrix against
``benchmarks/baselines/BENCH_arena_baseline.json``):

* ``arena_compactions``       -- free-list GC compactions run;
* ``array_ops_inplace``       -- in-place array mutations applied by
  the hooks (the transforms' work, measured on the arrays);
* ``compile_rebuilds_avoided``-- consumer refreshes served by the
  maintained arrays where the legacy path would have recompiled its
  schedule from the object graph;
* ``fingerprint_rehashes``    -- per-gate Merkle digest recomputations.

The legacy object-graph path is kept verbatim everywhere: set
``REPRO_NET_LEGACY=1`` and no arena is attached, so every consumer
falls back to the PR-4 rebuild-on-refresh behavior -- the A/B oracle
``benchmarks/test_net_arena.py`` holds bit-identical on every decision.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..network.circuit import Circuit, CircuitError
from ..network.gates import GateType
from ..sim.opcodes import OPCODE

try:  # optional [perf] extra; the pure-Python backend is always there
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None

#: Environment variable forcing the legacy object-graph path (A/B oracle).
LEGACY_ENV = "REPRO_NET_LEGACY"
#: Environment variable selecting the scalar-array storage backend.
BACKEND_ENV = "REPRO_NET_BACKEND"

#: The arena's deterministic work counters, in canonical order.
ARENA_COUNTERS = (
    "arena_compactions",
    "array_ops_inplace",
    "compile_rebuilds_avoided",
    "fingerprint_rehashes",
)

#: Gate-type code table (index into :data:`GT_LIST`).
GT_LIST: List[GateType] = list(GateType)
GT_CODE: Dict[GateType, int] = {gt: i for i, gt in enumerate(GT_LIST)}
#: ``GateType.value`` strings by code, for digest seeds.
GT_VALUE: List[str] = [gt.value for gt in GT_LIST]

#: Simulation opcodes -- the shared table of :mod:`repro.sim.opcodes`
#: (OUTPUT markers evaluate as BUF; one table, so the arena's ``evalop``
#: array can never drift from what the kernels execute).
SIM_OPCODE: Dict[GateType, int] = OPCODE

#: Compaction policy: collect when dead slots exceed half the arena and
#: the absolute floor (no point compacting toy arenas).
COMPACT_MIN_DEAD = 64
COMPACT_DEAD_FRACTION = 0.5


def net_enabled() -> bool:
    """Should the KMS loop run on the arena representation?

    True unless ``REPRO_NET_LEGACY`` is set to a non-empty, non-zero
    value -- the env-level A/B switch mirroring ``REPRO_SIM_LEGACY``.
    """
    return os.environ.get(LEGACY_ENV, "") in ("", "0")


def resolve_backend(requested: Optional[str] = None) -> str:
    """Pick the scalar-array storage backend (``python``/``numpy``)."""
    choice = requested or os.environ.get(BACKEND_ENV, "auto") or "auto"
    if choice == "python":
        return "python"
    if choice == "numpy":
        if _np is None:
            raise RuntimeError(
                f"{BACKEND_ENV}=numpy but numpy is not installed "
                "(pip install repro[perf])"
            )
        return "numpy"
    if choice != "auto":
        raise ValueError(
            f"unknown arena backend {choice!r}; "
            f"expected python, numpy, or auto"
        )
    return "numpy" if _np is not None else "python"


class _Vec:
    """Growable scalar array with numpy and pure-Python backends.

    Capacity doubles on growth; values are bit-identical across
    backends (plain ints/floats in, plain ints/floats out).
    """

    __slots__ = ("backend", "dtype", "fill", "n", "_data")

    def __init__(self, backend: str, dtype: str, fill=0) -> None:
        self.backend = backend
        self.dtype = dtype  # "i" (int64) or "f" (float64)
        self.fill = fill
        self.n = 0
        if backend == "numpy":
            np_dtype = _np.int64 if dtype == "i" else _np.float64
            self._data = _np.full(16, fill, dtype=np_dtype)
        else:
            self._data = []

    def append(self, value) -> None:
        if self.backend == "numpy":
            if self.n == len(self._data):
                grown = _np.full(
                    max(16, 2 * len(self._data)), self.fill,
                    dtype=self._data.dtype,
                )
                grown[: self.n] = self._data
                self._data = grown
            self._data[self.n] = value
        else:
            self._data.append(value)
        self.n += 1

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, idx: int):
        value = self._data[idx]
        if self.backend == "numpy":
            return int(value) if self.dtype == "i" else float(value)
        return value

    def __setitem__(self, idx: int, value) -> None:
        self._data[idx] = value

    def tolist(self) -> list:
        if self.backend == "numpy":
            return self._data[: self.n].tolist()
        return list(self._data)

    def array(self):
        """The live backing store (numpy view or list) up to length."""
        if self.backend == "numpy":
            return self._data[: self.n]
        return self._data


class NetArena:
    """Struct-of-arrays mirror of one :class:`Circuit`, hook-maintained.

    Construct via :func:`attach_arena`; the circuit's mutation
    primitives then keep the arrays fresh in place.  All public readers
    (:meth:`fingerprint`, :meth:`transitive_fanout`, the zero-copy
    simulation view in :mod:`repro.sim.kernel`) are O(query), never
    O(rebuild).
    """

    def __init__(self, circuit: Circuit, backend: Optional[str] = None):
        self.circuit = circuit
        self.backend = resolve_backend(backend)
        self.counters: Dict[str, int] = {k: 0 for k in ARENA_COUNTERS}
        #: informational: full from-scratch array builds (1 per attach
        #: unless the interface changes out from under the hooks).
        self.full_builds = 0
        #: informational: Pearce-Kelly order repairs and slots moved.
        self.pk_reorders = 0
        self.pk_slots_moved = 0
        #: bumped on every mutation the arena absorbs.
        self.version = 0
        #: bumped only when the *schedule* could have changed (topology
        #: or gate-type edits; delay/arrival edits leave it alone).
        self.topo_version = 0
        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _new_arrays(self) -> None:
        be = self.backend
        self.gt = _Vec(be, "i")
        self.evalop = _Vec(be, "i")
        self.gdelay = _Vec(be, "f")
        self.arrival = _Vec(be, "f")
        self.rank = _Vec(be, "i")
        self.alive: List[bool] = []
        self.gid_of: List[int] = []
        self.slot_of: Dict[int, int] = {}
        self.fanin: List[List[int]] = []   # conn slots, pin order
        self.fanout: List[List[int]] = []  # conn slots
        self.free_slots: List[int] = []
        # connections
        self.csrc = _Vec(be, "i")
        self.cdst = _Vec(be, "i")
        self.cdelay = _Vec(be, "f")
        self.cpin = _Vec(be, "i")
        self.calive: List[bool] = []
        self.cid_of: List[int] = []
        self.cslot_of: Dict[int, int] = {}
        self.free_cslots: List[int] = []
        # maintained topological order: list of slots, -1 holes
        self.sched_order: List[int] = []
        # interface
        self.pi_slots: List[int] = []
        self.po_slots: List[int] = []
        # live census
        self.n_live_gates = 0
        self.n_live_conns = 0
        self.n_eval_gates = 0  # live non-INPUT slots (sim cost metric)
        # fingerprint cache (gid-keyed; survives compaction)
        self.fps: Dict[int, str] = {}
        self._fp_dirty: Set[int] = set()
        self._fp_all_dirty = True
        self._csr_cache: Optional[tuple] = None

    def _build(self) -> None:
        """Full from-scratch build -- runs once at attach; afterwards
        the hooks maintain everything in place."""
        circuit = self.circuit
        self._new_arrays()
        self.full_builds += 1
        order = circuit.topological_order()
        for gid in order:
            gate = circuit.gates[gid]
            slot = self._alloc_slot(gid, gate.gtype, gate.delay)
            self.rank[slot] = len(self.sched_order)
            self.sched_order.append(slot)
        for gid in order:
            for cid in circuit.gates[gid].fanin:
                conn = circuit.conns[cid]
                self._alloc_conn(
                    cid, self.slot_of[conn.src], self.slot_of[conn.dst],
                    conn.delay,
                )
        for gid in circuit.inputs:
            slot = self.slot_of[gid]
            self.pi_slots.append(slot)
            self.arrival[slot] = circuit.input_arrival.get(gid, 0.0)
        self.po_slots = [self.slot_of[g] for g in circuit.outputs]
        self._fp_all_dirty = True

    def _alloc_slot(self, gid: int, gtype: GateType, delay: float) -> int:
        if self.free_slots:
            slot = self.free_slots.pop()
            self.gt[slot] = GT_CODE[gtype]
            self.evalop[slot] = SIM_OPCODE[gtype]
            self.gdelay[slot] = delay
            self.arrival[slot] = 0.0
            self.alive[slot] = True
            self.gid_of[slot] = gid
            self.fanin[slot] = []
            self.fanout[slot] = []
        else:
            slot = len(self.alive)
            self.gt.append(GT_CODE[gtype])
            self.evalop.append(SIM_OPCODE[gtype])
            self.gdelay.append(delay)
            self.arrival.append(0.0)
            self.rank.append(-1)
            self.alive.append(True)
            self.gid_of.append(gid)
            self.fanin.append([])
            self.fanout.append([])
        self.slot_of[gid] = slot
        self.n_live_gates += 1
        if gtype is not GateType.INPUT:
            self.n_eval_gates += 1
        return slot

    def _alloc_conn(self, cid: int, src: int, dst: int, delay: float) -> int:
        if self.free_cslots:
            c = self.free_cslots.pop()
            self.csrc[c] = src
            self.cdst[c] = dst
            self.cdelay[c] = delay
            self.calive[c] = True
            self.cid_of[c] = cid
        else:
            c = len(self.calive)
            self.csrc.append(src)
            self.cdst.append(dst)
            self.cdelay.append(delay)
            self.cpin.append(0)
            self.calive.append(True)
            self.cid_of.append(cid)
        self.cslot_of[cid] = c
        self.cpin[c] = len(self.fanin[dst])
        self.fanin[dst].append(c)
        self.fanout[src].append(c)
        self.n_live_conns += 1
        return c

    # ------------------------------------------------------------------ #
    # mutation hooks (called by Circuit primitives)
    # ------------------------------------------------------------------ #

    def _touch(self, n: int = 1) -> None:
        self.counters["array_ops_inplace"] += n
        self.version += 1
        self._csr_cache = None

    def on_add_gate(self, gid: int, gtype: GateType, delay: float) -> None:
        slot = self._alloc_slot(gid, gtype, delay)
        self.rank[slot] = len(self.sched_order)
        self.sched_order.append(slot)
        if gtype is GateType.INPUT:
            self.pi_slots.append(slot)
        elif gtype is GateType.OUTPUT:
            self.po_slots.append(slot)
        self._fp_dirty.add(gid)
        self.topo_version += 1
        self._touch()

    def on_connect(self, cid: int, src: int, dst: int, delay: float) -> None:
        s, d = self.slot_of[src], self.slot_of[dst]
        self._alloc_conn(cid, s, d, delay)
        if self.rank[s] > self.rank[d]:
            self._pk_repair(s, d)
        self._fp_dirty.add(dst)
        self.topo_version += 1
        self._touch()

    def on_remove_connection(self, cid: int) -> None:
        c = self.cslot_of.pop(cid)
        s, d = self.csrc[c], self.cdst[c]
        self.fanout[s].remove(c)
        pin = self.cpin[c]
        pins = self.fanin[d]
        pins.pop(pin)
        for later in pins[pin:]:
            self.cpin[later] = self.cpin[later] - 1
        self.calive[c] = False
        self.cid_of[c] = -1
        self.free_cslots.append(c)
        self.n_live_conns -= 1
        self._fp_dirty.add(self.gid_of[d])
        self.topo_version += 1
        self._touch()

    def on_remove_gate(self, gid: int) -> None:
        """Called after the circuit dropped the gate's connections."""
        slot = self.slot_of.pop(gid)
        gtype = GT_LIST[self.gt[slot]]
        self.alive[slot] = False
        self.sched_order[self.rank[slot]] = -1
        self.gid_of[slot] = -1
        self.free_slots.append(slot)
        self.n_live_gates -= 1
        if gtype is not GateType.INPUT:
            self.n_eval_gates -= 1
        if gtype is GateType.INPUT:
            self.pi_slots.remove(slot)
            self._fp_all_dirty = True  # PI indexes shift
        elif gtype is GateType.OUTPUT:
            self.po_slots.remove(slot)
            self._fp_all_dirty = True  # PO indexes shift
        self.fps.pop(gid, None)
        self._fp_dirty.discard(gid)
        self.topo_version += 1
        self._touch()
        self._maybe_compact()

    def on_move_source(self, cid: int, old_src: int, new_src: int) -> None:
        c = self.cslot_of[cid]
        s_old, s_new = self.slot_of[old_src], self.slot_of[new_src]
        self.fanout[s_old].remove(c)
        self.fanout[s_new].append(c)
        self.csrc[c] = s_new
        d = self.cdst[c]
        if self.rank[s_new] > self.rank[d]:
            self._pk_repair(s_new, d)
        self._fp_dirty.add(self.gid_of[d])
        self.topo_version += 1
        self._touch()

    def on_set_gate_type(self, gid: int, gtype: GateType) -> None:
        slot = self.slot_of[gid]
        old = GT_LIST[self.gt[slot]]
        if (old is GateType.INPUT) != (gtype is GateType.INPUT):
            self.n_eval_gates += 1 if gtype is GateType.INPUT else -1
        self.gt[slot] = GT_CODE[gtype]
        self.evalop[slot] = SIM_OPCODE[gtype]
        self._fp_dirty.add(gid)
        self.topo_version += 1  # the simulation opcode changed
        self._touch()

    def on_set_gate_delay(self, gid: int, delay: float) -> None:
        slot = self.slot_of[gid]
        self.gdelay[slot] = delay
        self._fp_dirty.add(gid)
        self._touch()

    def on_set_conn_delay(self, cid: int, delay: float) -> None:
        c = self.cslot_of[cid]
        self.cdelay[c] = delay
        self._fp_dirty.add(self.gid_of[self.cdst[c]])
        self._touch()

    def on_set_arrival(self, gid: int, arrival: float) -> None:
        slot = self.slot_of[gid]
        self.arrival[slot] = arrival
        self._fp_dirty.add(gid)
        self._touch()

    # ------------------------------------------------------------------ #
    # Pearce-Kelly incremental topological order
    # ------------------------------------------------------------------ #

    def _pk_repair(self, src_slot: int, dst_slot: int) -> None:
        """Restore rank[src] < rank[dst] for a new edge src -> dst by
        reordering only the affected window [rank[dst], rank[src]].

        Standard Pearce-Kelly: F = slots forward-reachable from dst
        within the window, B = slots backward-reachable from src within
        the window; pool their order positions and lay B before F.
        """
        rank = self.rank
        lb, ub = rank[dst_slot], rank[src_slot]
        # forward discovery from dst (fanout direction)
        fwd: List[int] = []
        seen_f = {dst_slot}
        stack = [dst_slot]
        while stack:
            s = stack.pop()
            fwd.append(s)
            for c in self.fanout[s]:
                t = self.cdst[c]
                if t == src_slot:
                    raise CircuitError("arena: edge insertion creates a cycle")
                if t not in seen_f and rank[t] <= ub:
                    seen_f.add(t)
                    stack.append(t)
        # backward discovery from src (fanin direction)
        bwd: List[int] = []
        seen_b = {src_slot}
        stack = [src_slot]
        while stack:
            s = stack.pop()
            bwd.append(s)
            for c in self.fanin[s]:
                t = self.csrc[c]
                if t not in seen_b and rank[t] >= lb:
                    seen_b.add(t)
                    stack.append(t)
        pool = sorted(rank[s] for s in fwd + bwd)
        nodes = sorted(bwd, key=rank.__getitem__) + sorted(
            fwd, key=rank.__getitem__
        )
        for position, slot in zip(pool, nodes):
            self.sched_order[position] = slot
            rank[slot] = position
        self.pk_reorders += 1
        self.pk_slots_moved += len(nodes)

    # ------------------------------------------------------------------ #
    # free-list GC / compaction
    # ------------------------------------------------------------------ #

    def _maybe_compact(self) -> None:
        dead = len(self.alive) - self.n_live_gates
        if dead >= COMPACT_MIN_DEAD and dead > (
            COMPACT_DEAD_FRACTION * len(self.alive)
        ):
            self.compact()

    def compact(self) -> None:
        """Rebuild the arrays densely, renumbering slots in topological
        order (after compaction ``rank`` is the identity over slots).
        Circuit gids/cids are untouched; the gid-keyed fingerprint
        cache survives verbatim."""
        old_order = [s for s in self.sched_order if s != -1]
        old_gid_of = self.gid_of
        old_gt = self.gt
        old_gdelay = self.gdelay
        old_arrival = self.arrival
        old_fanin = self.fanin
        old_cid_of = self.cid_of
        old_csrc = self.csrc
        old_cdelay = self.cdelay
        fps = self.fps
        fp_dirty = self._fp_dirty
        fp_all = self._fp_all_dirty
        version = self.version
        topo_version = self.topo_version

        self._new_arrays()
        remap: Dict[int, int] = {}
        for old_slot in old_order:
            gid = old_gid_of[old_slot]
            gtype = GT_LIST[old_gt[old_slot]]
            slot = self._alloc_slot(gid, gtype, old_gdelay[old_slot])
            self.arrival[slot] = old_arrival[old_slot]
            self.rank[slot] = len(self.sched_order)
            self.sched_order.append(slot)
            remap[old_slot] = slot
        for old_slot in old_order:
            for c in old_fanin[old_slot]:
                self._alloc_conn(
                    old_cid_of[c],
                    remap[old_csrc[c]],
                    remap[old_slot],
                    old_cdelay[c],
                )
        self.pi_slots = [
            self.slot_of[g] for g in self.circuit.inputs
        ]
        self.po_slots = [
            self.slot_of[g] for g in self.circuit.outputs
        ]
        for slot in self.pi_slots:
            self.arrival[slot] = self.circuit.input_arrival.get(
                self.gid_of[slot], 0.0
            )
        self.fps = fps
        self._fp_dirty = fp_dirty
        self._fp_all_dirty = fp_all
        self.version = version + 1
        self.topo_version = topo_version + 1
        self.counters["arena_compactions"] += 1

    # ------------------------------------------------------------------ #
    # readers: order, cones, CSR
    # ------------------------------------------------------------------ #

    def live_slots(self) -> Iterable[int]:
        """Live slots in maintained topological order."""
        for slot in self.sched_order:
            if slot != -1:
                yield slot

    def topo_gids(self) -> List[int]:
        """Live gids in maintained topological order (a valid order,
        not necessarily the one ``Circuit.topological_order`` returns)."""
        gid_of = self.gid_of
        return [gid_of[s] for s in self.sched_order if s != -1]

    def transitive_fanout(self, gids: Iterable[int]) -> Set[int]:
        """Set of gids in the transitive fanout of ``gids`` (inclusive)
        -- same contract as :meth:`Circuit.transitive_fanout`, computed
        over the flat arrays."""
        return self._cone(gids, self.fanout, self.cdst)

    def transitive_fanin(self, gids: Iterable[int]) -> Set[int]:
        """Set of gids in the transitive fanin of ``gids`` (inclusive)."""
        return self._cone(gids, self.fanin, self.csrc)

    def _cone(self, gids, adj, endpoint) -> Set[int]:
        slot_of = self.slot_of
        gid_of = self.gid_of
        seen_slots: Set[int] = set()
        stack = [slot_of[g] for g in gids]
        while stack:
            s = stack.pop()
            if s in seen_slots:
                continue
            seen_slots.add(s)
            for c in adj[s]:
                t = endpoint[c]
                if t not in seen_slots:
                    stack.append(t)
        return {gid_of[s] for s in seen_slots}

    def fanin_csr(self) -> Tuple[list, list]:
        """Read-optimized CSR over live slots in topological order:
        ``(indptr, src_slots)`` where row *i* holds the fanin source
        slots (pin order) of the i-th live slot of :meth:`live_slots`.
        Cached until the next mutation; numpy arrays on the numpy
        backend."""
        return self._csr()[0:2]

    def fanout_csr(self) -> Tuple[list, list]:
        """CSR of fanout destination slots, same row convention."""
        return self._csr()[2:4]

    def _csr(self):
        if self._csr_cache is None:
            in_ptr, in_idx, out_ptr, out_idx = [0], [], [0], []
            for slot in self.live_slots():
                for c in self.fanin[slot]:
                    in_idx.append(self.csrc[c])
                in_ptr.append(len(in_idx))
                for c in self.fanout[slot]:
                    out_idx.append(self.cdst[c])
                out_ptr.append(len(out_idx))
            if self.backend == "numpy":
                in_ptr, in_idx, out_ptr, out_idx = (
                    _np.asarray(a, dtype=_np.int64)
                    for a in (in_ptr, in_idx, out_ptr, out_idx)
                )
            self._csr_cache = (in_ptr, in_idx, out_ptr, out_idx)
        return self._csr_cache

    # ------------------------------------------------------------------ #
    # incremental Merkle fingerprints
    # ------------------------------------------------------------------ #

    def gate_fps(self) -> Dict[int, str]:
        """Fresh gid-keyed per-gate fingerprints, re-hashing only the
        dirty cone (bit-identical to
        :func:`repro.engine.hashing.gate_fingerprints`)."""
        self._ensure_fps()
        return self.fps

    def fingerprint(self) -> str:
        """The circuit-level content digest, without walking the object
        graph (bit-identical to
        :func:`repro.engine.hashing.circuit_fingerprint`)."""
        from ..engine.hashing import SCHEME, _digest

        self._ensure_fps()
        fps = self.fps
        gid_of = self.gid_of
        body = (
            SCHEME,
            self.n_live_gates,
            self.n_live_conns,
            tuple(fps[gid_of[s]] for s in self.po_slots),
            tuple(sorted(fps.values())),
        )
        return _digest(body)

    def _gate_fp(self, slot: int, pi_index: Dict[int, int],
                 po_index: Dict[int, int]) -> str:
        """Digest of one gate from the arrays -- seed layout identical
        to :func:`repro.engine.hashing.gate_fingerprint`."""
        from ..engine.hashing import _digest, _num

        gtype = GT_LIST[self.gt[slot]]
        if gtype is GateType.INPUT:
            seed = ("input", pi_index[slot], _num(self.arrival[slot]))
        elif gtype in (GateType.CONST0, GateType.CONST1):
            seed = (gtype.value,)
        else:
            fps = self.fps
            gid_of = self.gid_of
            fanin = tuple(
                (fps[gid_of[self.csrc[c]]], _num(self.cdelay[c]))
                for c in self.fanin[slot]
            )
            if gtype is GateType.OUTPUT:
                seed = ("output", po_index[slot], fanin)
            else:
                seed = (gtype.value, _num(self.gdelay[slot]), fanin)
        return _digest(seed)

    def _ensure_fps(self) -> None:
        if self._fp_all_dirty:
            self.fps.clear()
            self._fp_dirty.clear()
            pi_index = {s: i for i, s in enumerate(self.pi_slots)}
            po_index = {s: i for i, s in enumerate(self.po_slots)}
            for slot in self.live_slots():
                self.fps[self.gid_of[slot]] = self._gate_fp(
                    slot, pi_index, po_index
                )
                self.counters["fingerprint_rehashes"] += 1
            self._fp_all_dirty = False
            return
        if not self._fp_dirty:
            return
        pi_index = {s: i for i, s in enumerate(self.pi_slots)}
        po_index = {s: i for i, s in enumerate(self.po_slots)}
        rank = self.rank
        slot_of = self.slot_of
        heap = []
        queued: Set[int] = set()
        for gid in self._fp_dirty:
            slot = slot_of.get(gid)
            if slot is not None and slot not in queued:
                queued.add(slot)
                heapq.heappush(heap, (rank[slot], slot))
        self._fp_dirty.clear()
        fps = self.fps
        gid_of = self.gid_of
        while heap:
            _, slot = heapq.heappop(heap)
            queued.discard(slot)
            gid = gid_of[slot]
            old = fps.get(gid)
            new = self._gate_fp(slot, pi_index, po_index)
            fps[gid] = new
            self.counters["fingerprint_rehashes"] += 1
            if new == old:
                continue
            for c in self.fanout[slot]:
                dst = self.cdst[c]
                if dst not in queued:
                    queued.add(dst)
                    heapq.heappush(heap, (rank[dst], dst))

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        """Structural self-check against the owning circuit (tests and
        paranoia; raises :class:`CircuitError` on any divergence)."""
        circuit = self.circuit
        if set(self.slot_of) != set(circuit.gates):
            raise CircuitError("arena: gid set diverged")
        if set(self.cslot_of) != set(circuit.conns):
            raise CircuitError("arena: cid set diverged")
        rank = self.rank
        for cid, conn in circuit.conns.items():
            c = self.cslot_of[cid]
            s, d = self.slot_of[conn.src], self.slot_of[conn.dst]
            if self.csrc[c] != s or self.cdst[c] != d:
                raise CircuitError(f"arena: conn {cid} endpoints diverged")
            if self.cdelay[c] != conn.delay:
                raise CircuitError(f"arena: conn {cid} delay diverged")
            if rank[s] >= rank[d]:
                raise CircuitError(f"arena: order violated on conn {cid}")
        for gid, gate in circuit.gates.items():
            slot = self.slot_of[gid]
            if GT_LIST[self.gt[slot]] is not gate.gtype:
                raise CircuitError(f"arena: gate {gid} type diverged")
            if self.gdelay[slot] != gate.delay:
                raise CircuitError(f"arena: gate {gid} delay diverged")
            if [self.cid_of[c] for c in self.fanin[slot]] != gate.fanin:
                raise CircuitError(f"arena: gate {gid} fanin diverged")
            if sorted(self.cid_of[c] for c in self.fanout[slot]) != sorted(
                gate.fanout
            ):
                raise CircuitError(f"arena: gate {gid} fanout diverged")
            for pin, c in enumerate(self.fanin[slot]):
                if self.cpin[c] != pin:
                    raise CircuitError(f"arena: pin index diverged on {gid}")
        if [self.gid_of[s] for s in self.pi_slots] != circuit.inputs:
            raise CircuitError("arena: PI order diverged")
        if [self.gid_of[s] for s in self.po_slots] != circuit.outputs:
            raise CircuitError("arena: PO order diverged")

    def stats(self) -> Dict[str, int]:
        """Occupancy snapshot for reports and GC tests."""
        return {
            "slots": len(self.alive),
            "live_gates": self.n_live_gates,
            "free_slots": len(self.free_slots),
            "conn_slots": len(self.calive),
            "live_conns": self.n_live_conns,
            "free_conn_slots": len(self.free_cslots),
            "order_holes": len(self.sched_order) - self.n_live_gates,
        }

    def __repr__(self) -> str:
        return (
            f"<NetArena {self.circuit.name!r}: {self.n_live_gates} live / "
            f"{len(self.alive)} slots, backend={self.backend}, "
            f"v{self.version} topo{self.topo_version}>"
        )


# ---------------------------------------------------------------------- #
# attachment
# ---------------------------------------------------------------------- #

def attach_arena(
    circuit: Circuit, backend: Optional[str] = None
) -> NetArena:
    """Build a :class:`NetArena` for ``circuit`` and register it as the
    circuit's primary flat representation (idempotent)."""
    arena = getattr(circuit, "_arena", None)
    if arena is None or arena.circuit is not circuit:
        arena = NetArena(circuit, backend)
        circuit._arena = arena
    return arena


def get_arena(circuit: Circuit) -> Optional[NetArena]:
    """The circuit's attached arena, or None."""
    arena = getattr(circuit, "_arena", None)
    if arena is not None and arena.circuit is circuit:
        return arena
    return None


def detach_arena(circuit: Circuit) -> None:
    """Drop the attached arena (the circuit reverts to pure object
    graph; mainly for tests and the A/B oracle)."""
    circuit._arena = None
