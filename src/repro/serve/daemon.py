"""The serve daemon: config, lifecycle, graceful drain.

:class:`ServeDaemon` wires the pieces together on one asyncio loop:
an :class:`~repro.serve.http.HttpFrontend` accepting requests, a
:class:`~repro.serve.jobs.JobManager` coalescing them, and a
:class:`~repro.serve.pool.WorkerPool` executing them, all sharing one
content-addressed artifact store (:class:`~repro.engine.ResultCache`)
for the daemon's lifetime.

Shutdown (SIGTERM/SIGINT, or :meth:`request_stop`) drains gracefully:
new submissions get 503, in-flight executions run to completion (up to
``drain_timeout`` seconds), then worker processes are reaped.

:class:`InProcessServer` runs the same daemon on a background thread
with an OS-assigned port -- the harness the tests, the examples, and
the load benchmark all use.
"""

from __future__ import annotations

import asyncio
import signal
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..engine import ResultCache
from .http import HttpFrontend
from .jobs import JobManager
from .pool import WorkerPool


@dataclass
class ServeConfig:
    """Daemon knobs (all have serviceable defaults)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = OS-assigned; read ServeDaemon.port after start
    workers: int = 2
    queue_depth: int = 64
    job_timeout: Optional[float] = 300.0
    retries: int = 1
    cache_dir: Optional[str] = None  # None = private temp dir
    cache_max_bytes: Optional[int] = None
    memo: bool = True
    memo_cap: int = 1024
    drain_timeout: float = 30.0
    debug: bool = False  # enable worker fault-injection hooks (tests)

    extra: Dict[str, Any] = field(default_factory=dict)


class ServeDaemon:
    """One long-running optimization service."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.manager: Optional[JobManager] = None
        self.pool: Optional[WorkerPool] = None
        self.cache: Optional[ResultCache] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        # created on the running loop in start() (py3.9 binds Events to
        # the loop current at construction time)
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    async def start(self) -> None:
        config = self.config
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        cache_dir = config.cache_dir
        if cache_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            cache_dir = self._tmpdir.name
        self.cache = ResultCache(cache_dir)
        self.pool = WorkerPool(
            size=config.workers,
            loop=self._loop,
            on_event=lambda execution, event: self.manager.on_event(
                execution, event
            ),
            on_done=lambda execution, outcome, payload: self._on_done(
                execution, outcome, payload
            ),
            cache_dir=cache_dir,
            retries=config.retries,
            default_timeout=config.job_timeout,
        )
        self.manager = JobManager(
            self.pool,
            queue_depth=config.queue_depth,
            memo=config.memo,
            memo_cap=config.memo_cap,
            debug=config.debug,
        )
        self.pool.start()
        frontend = HttpFrontend(self)
        self._server = await asyncio.start_server(
            frontend.handle, host=config.host, port=config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def _on_done(self, execution, outcome, payload) -> None:
        self.manager.on_done(execution, outcome, payload)
        limit = self.config.cache_max_bytes
        if limit is not None and self.cache is not None:
            self.cache.trim(limit)

    async def stop(self) -> None:
        """Graceful drain, then teardown."""
        if self.manager is not None:
            await self.manager.drain(self.config.drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.pool is not None:
            await self.pool.shutdown()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()

    async def serve_forever(self) -> None:
        await self.start()
        await self._stop.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Thread-safe shutdown trigger."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass

    def stats(self) -> Dict[str, Any]:
        stats = self.manager.stats() if self.manager is not None else {}
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        stats["port"] = self.port
        stats["config"] = {
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "job_timeout": self.config.job_timeout,
            "retries": self.config.retries,
            "memo": self.config.memo,
            "debug": self.config.debug,
        }
        return stats

    def run(self) -> int:
        """Blocking entry point (the ``repro serve`` CLI command)."""

        async def main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._stop.set)
                except (NotImplementedError, RuntimeError):
                    pass
            await self._stop.wait()
            await self.stop()

        asyncio.run(main())
        return 0


class InProcessServer:
    """The daemon on a background thread: the test/bench harness.

    Usage::

        with InProcessServer(ServeConfig(workers=2)) as server:
            client = ServeClient(port=server.port)
            ...
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.daemon = ServeDaemon(config)
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="serve-daemon", daemon=True
        )

    @property
    def port(self) -> int:
        assert self.daemon.port is not None
        return self.daemon.port

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.daemon.start()
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.daemon._stop.wait()
            await self.daemon.stop()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface startup failures to start()
            if not self._ready.is_set():
                self._error = exc
                self._ready.set()

    def start(self) -> "InProcessServer":
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._error is not None:
            raise RuntimeError(
                f"serve daemon failed to start: {self._error}"
            )
        if self.daemon.port is None:
            raise RuntimeError("serve daemon did not bind a port")
        return self

    def stop(self) -> None:
        self.daemon.request_stop()
        self._thread.join(timeout=60)

    def __enter__(self) -> "InProcessServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
