"""Job manager: coalescing, queueing, lifecycle, and counters.

The unit of *work* is an :class:`Execution`, keyed by
:func:`~repro.serve.protocol.job_key` (circuit fingerprint + expanded
pipeline).  The unit of *interest* is a :class:`ClientJob` -- what a
``POST /jobs`` returns.  Many client jobs may attach to one execution:

* a submission whose key matches an execution still queued/running
  **coalesces in flight** -- it gets its own job id, shares the
  execution's progress stream and result, and consumes no queue slot;
* a submission whose key matches an already-completed execution is
  served from the daemon-lifetime **result memo** without touching the
  queue at all (and underneath both sits the on-disk artifact store,
  which would make even a cold re-execution mostly cache hits);
* otherwise a new execution is created -- or refused with
  :class:`QueueFull` (HTTP 429 backpressure) when the pending queue is
  at its configured depth.

Cancellation is per client: an execution only stops (queued: dropped;
running: worker killed) when *every* attached client has cancelled.

All methods run on the daemon's event-loop thread; the only cross-
thread surface is each execution's ``cancel_requested`` event, which
worker-slot threads poll.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..engine.hashing import circuit_fingerprint
from .protocol import JobSpec, job_key, parse_spec

#: Client-visible terminal states.
TERMINAL = ("done", "failed", "timeout", "cancelled")


class QueueFull(Exception):
    """Backpressure: the pending queue is at capacity (HTTP 429)."""


class Draining(Exception):
    """The daemon is shutting down and refuses new work (HTTP 503)."""


class UnknownJob(KeyError):
    """No such job id (HTTP 404)."""


class Execution:
    """One scheduled unit of work, shared by its attached clients."""

    def __init__(
        self,
        exec_id: str,
        key: str,
        spec: JobSpec,
    ) -> None:
        self.exec_id = exec_id
        self.key = key
        self.name = spec.name
        self.payload = spec.worker_payload()
        self.priority = spec.priority
        self.timeout = spec.timeout
        self.fingerprint = spec.fingerprint
        self.state = "queued"
        self.attempts = 0
        self.worker_pid: Optional[int] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.cancel_requested = threading.Event()
        self.finished = asyncio.Event()
        self.events: List[Dict[str, Any]] = []
        self.subscribers: List[asyncio.Queue] = []
        self.clients: Dict[str, "ClientJob"] = {}

    # -- progress stream ----------------------------------------------- #

    def publish(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        for q in list(self.subscribers):
            q.put_nowait(event)

    def subscribe(self) -> Tuple[List[Dict[str, Any]], asyncio.Queue]:
        """(history so far, live queue).  The queue ends with ``None``."""
        q: asyncio.Queue = asyncio.Queue()
        history = list(self.events)
        if self.finished.is_set():
            q.put_nowait(None)
        else:
            self.subscribers.append(q)
        return history, q

    # -- lifecycle ------------------------------------------------------ #

    def finish(
        self,
        state: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        if self.finished.is_set():
            return
        self.state = state
        self.result = result
        self.error = error
        self.publish({"type": "done", "state": state, "error": error})
        for q in list(self.subscribers):
            q.put_nowait(None)
        self.subscribers.clear()
        self.finished.set()

    @property
    def live_clients(self) -> int:
        return sum(1 for j in self.clients.values() if not j.cancelled)


class ClientJob:
    """One client's handle on an execution."""

    def __init__(
        self, job_id: str, execution: Execution, coalesced: Optional[str]
    ) -> None:
        self.job_id = job_id
        self.execution = execution
        self.coalesced = coalesced  # None | "inflight" | "completed"
        self.cancelled = False

    @property
    def state(self) -> str:
        if self.cancelled:
            return "cancelled"
        return self.execution.state

    def describe(self) -> Dict[str, Any]:
        execution = self.execution
        return {
            "job_id": self.job_id,
            "state": self.state,
            "key": execution.key,
            "exec_id": execution.exec_id,
            "name": execution.name,
            "fingerprint": execution.fingerprint,
            "coalesced": self.coalesced,
            "attempts": execution.attempts,
            "error": execution.error,
        }


class JobManager:
    """Submission front-end over a :class:`~repro.serve.pool.WorkerPool`.

    The pool is injected (constructed by the daemon) so the manager
    stays testable without processes.
    """

    def __init__(
        self,
        pool,
        queue_depth: int = 64,
        memo: bool = True,
        memo_cap: int = 1024,
        debug: bool = False,
    ) -> None:
        self.pool = pool
        self.queue_depth = queue_depth
        self.memo_enabled = memo
        self.memo_cap = memo_cap
        self.debug = debug
        self.draining = False
        self.jobs: Dict[str, ClientJob] = {}
        self.active: Dict[str, Execution] = {}  # key -> unfinished
        self.memo: "OrderedDict[str, Execution]" = OrderedDict()
        self._ids = itertools.count(1)
        self.counters: Dict[str, int] = {
            "submissions": 0,
            "coalesced_inflight": 0,
            "coalesced_completed": 0,
            "executions_created": 0,
            "done": 0,
            "failed": 0,
            "timeout": 0,
            "cancelled": 0,
        }
        self.stage_executions: Dict[str, int] = {}

    # -- pool callbacks (loop thread) ----------------------------------- #

    def on_event(self, execution: Execution, event: Dict[str, Any]) -> None:
        if event.get("type") == "running":
            self._mark_running(execution)
        execution.publish(event)

    def on_done(
        self,
        execution: Execution,
        outcome: str,
        payload: Optional[Dict[str, Any]],
    ) -> None:
        if execution.finished.is_set():
            return
        if outcome == "done":
            assert payload is not None
            if payload.get("ok"):
                state, error = "done", None
                for record in payload.get("records", []):
                    if record.get("cache") != "hit" and not record.get("error"):
                        stage = record["stage"]
                        self.stage_executions[stage] = (
                            self.stage_executions.get(stage, 0) + 1
                        )
                if self.memo_enabled:
                    self.memo[execution.key] = execution
                    while len(self.memo) > self.memo_cap:
                        self.memo.popitem(last=False)
            else:
                state, error = "failed", payload.get("error")
        elif outcome == "crashed":
            state = "failed"
            error = (
                f"worker crashed {execution.attempts} time(s); "
                f"job abandoned"
            )
            payload = None
        elif outcome == "timeout":
            state, error, payload = "timeout", "job timed out", None
        else:
            state, error, payload = "cancelled", None, None
        self.counters[state] += 1
        if self.active.get(execution.key) is execution:
            del self.active[execution.key]
        execution.finish(state, result=payload, error=error)

    def _mark_running(self, execution: Execution) -> None:
        if execution.state == "queued":
            execution.state = "running"

    # -- client API (loop thread) --------------------------------------- #

    def submit(self, body: Any) -> ClientJob:
        """Validate, coalesce or enqueue, and return the client job."""
        if self.draining:
            raise Draining("daemon is draining; resubmit elsewhere")
        self.counters["submissions"] += 1
        spec = parse_spec(body, debug_enabled=self.debug)
        spec.fingerprint = circuit_fingerprint(spec.circuit)
        key = job_key(spec.fingerprint, spec.pipeline)

        execution = self.active.get(key)
        coalesced: Optional[str] = None
        if execution is not None:
            coalesced = "inflight"
            self.counters["coalesced_inflight"] += 1
        elif self.memo_enabled and key in self.memo:
            execution = self.memo[key]
            coalesced = "completed"
            self.counters["coalesced_completed"] += 1
        else:
            if self.pool.queue_depth >= self.queue_depth:
                raise QueueFull(
                    f"pending queue at capacity ({self.queue_depth})"
                )
            execution = Execution(
                exec_id=f"x{next(self._ids)}", key=key, spec=spec
            )
            self.active[key] = execution
            self.counters["executions_created"] += 1
            execution.publish({"type": "queued", "key": key})
            self.pool.enqueue(execution)
        job = ClientJob(f"j{next(self._ids)}", execution, coalesced)
        execution.clients[job.job_id] = job
        self.jobs[job.job_id] = job
        return job

    def get(self, job_id: str) -> ClientJob:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id) from None

    def cancel(self, job_id: str) -> ClientJob:
        """Cancel this client's interest; stop the execution if it was
        the last one."""
        job = self.get(job_id)
        execution = job.execution
        if job.cancelled or execution.finished.is_set():
            return job
        job.cancelled = True
        if execution.live_clients == 0:
            execution.cancel_requested.set()
            if execution.state == "queued":
                # drop it before a slot ever picks it up
                if self.active.get(execution.key) is execution:
                    del self.active[execution.key]
                self.counters["cancelled"] += 1
                execution.finish("cancelled")
            # running: the slot thread sees the flag, kills the worker,
            # and on_done() resolves the execution
        return job

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The terminal response body, or ``None`` while unfinished."""
        job = self.get(job_id)
        execution = job.execution
        if job.cancelled:
            return {**job.describe(), "result": None}
        if not execution.finished.is_set():
            return None
        return {**job.describe(), "result": execution.result}

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new work, wait for in-flight executions to finish.

        Returns True when everything finished inside ``timeout``."""
        self.draining = True
        pending = [e.finished.wait() for e in self.active.values()]
        if not pending:
            return True
        waiter = asyncio.gather(*pending)
        try:
            await asyncio.wait_for(waiter, timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def stats(self) -> Dict[str, Any]:
        counters = dict(self.counters)
        counters["coalesced_total"] = (
            counters["coalesced_inflight"] + counters["coalesced_completed"]
        )
        return {
            "counters": counters,
            "stage_executions": dict(self.stage_executions),
            "active_executions": len(self.active),
            "memo_entries": len(self.memo),
            "jobs": len(self.jobs),
            "draining": self.draining,
            "pool": self.pool.stats(),
        }
