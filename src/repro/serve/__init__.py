"""``repro.serve`` -- async optimization service.

A stdlib-only daemon (asyncio + hand-rolled HTTP/JSON) that accepts
circuits, schedules ``kms | atpg | fraig | verify | sweep`` pipelines
onto a supervised worker pool, coalesces duplicate requests by circuit
fingerprint, and shares one on-disk artifact store across its lifetime.

Start one from the CLI (``repro serve``), embed one in-process for
tests (:class:`InProcessServer`), and talk to either with the
synchronous :class:`ServeClient`.  See ``docs/SERVE.md``.
"""

from .client import ServeClient, ServeError
from .daemon import InProcessServer, ServeConfig, ServeDaemon
from .jobs import Draining, JobManager, QueueFull, UnknownJob
from .pool import WorkerPool
from .protocol import (
    SCHEMA,
    BadRequest,
    JobSpec,
    build_pipeline,
    job_key,
    parse_spec,
    resolve_circuit,
)

__all__ = [
    "SCHEMA",
    "BadRequest",
    "Draining",
    "InProcessServer",
    "JobManager",
    "JobSpec",
    "QueueFull",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "UnknownJob",
    "WorkerPool",
    "build_pipeline",
    "job_key",
    "parse_spec",
    "resolve_circuit",
]
