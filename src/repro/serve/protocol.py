"""Wire protocol of the optimization service: job specs and keys.

A submission body (``POST /jobs``) names a circuit source, a pipeline,
and scheduling knobs::

    {
      "circuit":  {"kind": "builtin", "name": "csa8.2", "seed": 0}
                | {"kind": "factory", "factory": "carry_skip_adder",
                   "params": {"nbits": 8, "block": 2}}
                | {"kind": "blif", "text": ".model ..."}
                | {"kind": "json", "circuit": {...repro.engine.serialize...}},
      "pipeline": "kms" | "atpg" | "fraig" | "verify" | "sweep"
                | [{"stage": "kms", "params": {...}, "label": null}, ...],
      "params":   {...},        # named-pipeline overrides (mode, model, ...)
      "priority": 0,            # lower runs sooner; FIFO within a priority
      "timeout":  12.5,         # per-job wall-clock seconds (null = default)
      "name":     "my-job"      # display label in telemetry records
    }

The daemon resolves the circuit immediately (a bad netlist fails at
submit time, not minutes later on a worker) and keys the job by
``job_key(circuit fingerprint, pipeline)`` -- the dedup identity: two
submissions whose *resolved* circuits hash identically are the same
work, whatever the encoding of their source.  (BLIF is a lossy
encoding -- it drops PI arrival times and re-parses NANDs as AND+NOT
-- so a builtin and its BLIF export may legitimately key apart; the
``json`` encoding round-trips exactly.)

Named pipelines expand to the same :class:`~repro.engine.StageCall`
lists the CLI/bench flows use, so a served result is bit-identical to
the one-shot command by construction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..circuits import named_circuit
from ..engine import StageCall, build_circuit, circuit_to_dict, get_stage
from ..engine.serialize import circuit_from_dict
from ..engine.sweep import table1_pipeline
from ..io import parse_blif
from ..network import Circuit

SCHEMA = "repro.serve/1"

#: Default delay model for named pipelines: CLI parity (``repro kms``
#: honors PI arrival times unless ``--zero-arrivals``).
DEFAULT_MODEL: Dict[str, Any] = {"kind": "unit", "use_arrival_times": True}

PIPELINE_NAMES = ("kms", "atpg", "fraig", "verify", "sweep")


class BadRequest(ValueError):
    """A malformed submission; maps to HTTP 400."""


def build_pipeline(
    pipeline: Union[str, List[Dict[str, Any]]],
    params: Optional[Dict[str, Any]] = None,
) -> List[StageCall]:
    """Expand a named pipeline (or validate an explicit stage list)."""
    params = dict(params or {})
    if isinstance(pipeline, str):
        model = params.get("model", DEFAULT_MODEL)
        mode = params.get("mode", "static")
        if pipeline == "kms":
            return [StageCall("kms", {"model": model, "mode": mode})]
        if pipeline == "atpg":
            return [StageCall("atpg", {})]
        if pipeline == "fraig":
            return [StageCall("fraig", {
                "seed": int(params.get("seed", 0)),
                "conflict_limit": params.get("conflict_limit", 1000),
            })]
        if pipeline == "verify":
            return [
                StageCall("kms", {"model": model, "mode": mode}),
                StageCall("verify", {
                    "method": params.get("method", "fraig")
                }),
            ]
        if pipeline == "sweep":
            return table1_pipeline(model, mode)
        raise BadRequest(
            f"unknown pipeline {pipeline!r}; "
            f"choose from {PIPELINE_NAMES} or pass a stage list"
        )
    if not isinstance(pipeline, list) or not pipeline:
        raise BadRequest("pipeline must be a name or a non-empty list")
    calls = []
    for item in pipeline:
        if not isinstance(item, dict) or "stage" not in item:
            raise BadRequest(f"bad pipeline entry {item!r}")
        try:
            get_stage(item["stage"])
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        stage_params = item.get("params", {})
        if "_model" in stage_params:
            raise BadRequest("live delay models cannot cross the wire")
        calls.append(StageCall(
            item["stage"], dict(stage_params), item.get("label")
        ))
    return calls


def resolve_circuit(source: Any) -> Circuit:
    """Build the submitted circuit, whatever its encoding."""
    if not isinstance(source, dict) or "kind" not in source:
        raise BadRequest("circuit must be a dict with a 'kind'")
    kind = source["kind"]
    try:
        if kind == "builtin":
            return named_circuit(
                source["name"], seed=int(source.get("seed", 0))
            )
        if kind == "factory":
            return build_circuit(
                source["factory"], dict(source.get("params", {}))
            )
        if kind == "blif":
            return parse_blif(source["text"])
        if kind == "json":
            return circuit_from_dict(source["circuit"])
    except BadRequest:
        raise
    except KeyError as exc:
        raise BadRequest(f"circuit source missing field {exc}") from None
    except Exception as exc:  # parse/build errors are client errors
        raise BadRequest(f"bad circuit: {type(exc).__name__}: {exc}") from None
    raise BadRequest(f"unknown circuit kind {kind!r}")


def job_key(fingerprint: str, pipeline: List[StageCall]) -> str:
    """Dedup identity of one unit of work.

    Canonical over the *resolved* circuit (content fingerprint:
    structurally identical netlists coalesce regardless of encoding)
    and the expanded pipeline (params JSON-canonicalized,
    order-independent).
    """
    blob = json.dumps(
        {
            "schema": SCHEMA,
            "fingerprint": fingerprint,
            "pipeline": [call.to_dict() for call in pipeline],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class JobSpec:
    """A validated submission, ready to schedule."""

    name: str
    circuit: Circuit
    pipeline: List[StageCall]
    fingerprint: str = ""
    priority: int = 0
    timeout: Optional[float] = None
    debug: Dict[str, Any] = field(default_factory=dict)

    def worker_payload(self) -> Dict[str, Any]:
        """The picklable message a worker process executes."""
        return {
            "name": self.name,
            "circuit": circuit_to_dict(self.circuit),
            "pipeline": [call.to_dict() for call in self.pipeline],
            "debug": dict(self.debug),
        }


def parse_spec(body: Any, debug_enabled: bool = False) -> JobSpec:
    """Validate a ``POST /jobs`` body into a :class:`JobSpec`.

    ``debug`` hooks (worker spin/crash injection, used by the test and
    load-bench suites) are stripped unless the daemon enables them.
    """
    if not isinstance(body, dict):
        raise BadRequest("submission body must be a JSON object")
    if "circuit" not in body:
        raise BadRequest("submission needs a 'circuit' source")
    circuit = resolve_circuit(body["circuit"])
    pipeline = build_pipeline(
        body.get("pipeline", "kms"), body.get("params")
    )
    timeout = body.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise BadRequest(f"bad timeout {timeout!r}") from None
        if timeout <= 0:
            raise BadRequest("timeout must be positive")
    try:
        priority = int(body.get("priority", 0))
    except (TypeError, ValueError):
        raise BadRequest(f"bad priority {body.get('priority')!r}") from None
    debug = body.get("debug") or {}
    if debug and not debug_enabled:
        raise BadRequest("debug hooks are disabled on this daemon")
    name = str(body.get("name") or "job")
    return JobSpec(
        name=name,
        circuit=circuit,
        pipeline=pipeline,
        priority=priority,
        timeout=timeout,
        debug=dict(debug),
    )
