"""Worker-process entry point of the serve daemon.

One worker = one long-lived ``multiprocessing`` process executing jobs
sequentially: it receives a picklable job payload over its pipe, runs
the pipeline through the shared engine machinery (content-addressed
:class:`~repro.engine.ResultCache` opened on the daemon's artifact
directory, so cross-request reuse is automatic), streams every
telemetry record back as an ``("event", ...)`` message the moment it
lands -- via :meth:`Telemetry.subscribe` -- and finishes with one
``("result", ...)`` message.

Workers are *expendable*: the supervisor treats a dead pipe as a crash,
respawns the process, and retries the job.  Nothing in here may take
the daemon down -- every exception is folded into a failed result.

The ``debug`` payload field (only forwarded by daemons started with
``debug=True``; the test/bench suites) injects controlled misbehavior:
``{"spin": s}`` sleeps before executing (timeout and mid-job-kill
tests), ``{"exit_below_attempt": n}`` hard-exits the process while
attempt < n (deterministic crash-recovery tests).
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from typing import Any, Dict, Optional

from ..engine import (
    EngineConfig,
    ResultCache,
    StageCall,
    Telemetry,
    run_pipeline,
)
from ..engine.hashing import circuit_fingerprint
from ..engine.serialize import circuit_from_dict
from ..io import write_blif


def execute_payload(
    payload: Dict[str, Any],
    attempt: int,
    cache: ResultCache,
    send=None,
) -> Dict[str, Any]:
    """Run one job payload; returns the result dict sent to the daemon.

    Split out from the process loop so tests can drive it in-process.
    """
    debug = payload.get("debug") or {}
    if debug.get("exit_below_attempt") and attempt < int(
        debug["exit_below_attempt"]
    ):
        os._exit(3)  # simulated segfault: no cleanup, no result
    if debug.get("spin"):
        time.sleep(float(debug["spin"]))

    circuit = circuit_from_dict(payload["circuit"])
    pipeline = [StageCall.from_dict(c) for c in payload["pipeline"]]
    telemetry = Telemetry()
    if send is not None:
        telemetry.subscribe(
            lambda record: send(("event", {
                "type": "stage",
                "attempt": attempt,
                "record": record.to_dict(),
            }))
        )
    result = run_pipeline(
        circuit,
        pipeline,
        job_name=payload.get("name", "job"),
        cache=cache,
        config=EngineConfig(jobs=1, retries=0),
        telemetry=telemetry,
        keep_final=True,
    )
    out = result.to_dict()
    out["attempt"] = attempt
    if result.ok and result.final_circuit is not None:
        final = circuit_from_dict(result.final_circuit)
        out["final_fingerprint"] = circuit_fingerprint(final)
        out["blif"] = write_blif(final)
    # the serialized netlist already rode back as BLIF; the raw dict
    # would double the response for nothing
    out.pop("final_circuit", None)
    return out


def worker_main(conn, cache_dir: Optional[str]) -> None:
    """Process target: serve jobs from ``conn`` until EOF/None.

    SIGINT is ignored -- a Ctrl-C to the daemon's process group must
    not kill workers before the graceful drain does.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    cache = ResultCache(cache_dir)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        try:
            result = execute_payload(
                message["payload"],
                int(message.get("attempt", 1)),
                cache,
                send=conn.send,
            )
        except Exception as exc:  # job bug, never a worker death
            result = {
                "name": message.get("payload", {}).get("name", "job"),
                "ok": False,
                "results": {},
                "records": [],
                "error": f"{type(exc).__name__}: {exc}\n"
                         f"{traceback.format_exc(limit=5)}",
                "attempt": int(message.get("attempt", 1)),
            }
        try:
            conn.send(("result", result))
        except (OSError, BrokenPipeError):
            return
