"""Minimal stdlib HTTP/1.1 front-end for the serve daemon.

No web framework: requests are parsed straight off the asyncio stream
(request line, headers, Content-Length body) and every response closes
the connection, which keeps the parser ~50 lines and makes the NDJSON
progress stream trivial (write lines until done, close).

Endpoints (see ``docs/SERVE.md`` for the full reference):

====== ============================ ===========================================
POST   /jobs                        submit; 200 + job handle, 400 bad spec,
                                    429 queue full, 503 draining
GET    /jobs/<id>                   status snapshot
GET    /jobs/<id>/result[?wait=S]   result; 202 + status while unfinished
                                    (``wait`` long-polls up to S seconds)
POST   /jobs/<id>/cancel            cancel this client's interest
GET    /jobs/<id>/events            NDJSON progress stream (history, then
                                    live records, then a ``done`` line)
GET    /stats                       counters, queue, workers, cache
GET    /healthz                     liveness probe
====== ============================ ===========================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Tuple
from urllib.parse import parse_qs, urlsplit

from .jobs import Draining, QueueFull, UnknownJob
from .protocol import BadRequest

#: Submission bodies above this are refused (a Table I circuit is ~100kB
#: of BLIF; 16MB leaves two orders of magnitude of headroom).
MAX_BODY = 16 * 1024 * 1024

REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """(method, target, headers, body) for one request."""
    line = await reader.readline()
    if not line:
        raise HttpError(400, "empty request")
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY:
        raise HttpError(413, f"body exceeds {MAX_BODY} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def encode_response(status: int, payload: Dict[str, Any]) -> bytes:
    body = json.dumps(payload).encode("utf-8") + b"\n"
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


def _json_body(body: bytes) -> Any:
    if not body:
        return {}
    try:
        return json.loads(body)
    except ValueError:
        raise HttpError(400, "body is not valid JSON") from None


class HttpFrontend:
    """Routes requests onto a :class:`~repro.serve.jobs.JobManager`."""

    def __init__(self, daemon) -> None:
        self.daemon = daemon

    @property
    def manager(self):
        return self.daemon.manager

    async def handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, target, _headers, body = await read_request(reader)
                await self._route(method, target, body, writer)
            except HttpError as exc:
                writer.write(encode_response(
                    exc.status, {"error": str(exc)}
                ))
            except (
                asyncio.IncompleteReadError, ConnectionError, OSError
            ):
                return
            except Exception as exc:  # daemon must survive handler bugs
                writer.write(encode_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                ))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        url = urlsplit(target)
        parts = [p for p in url.path.split("/") if p]
        query = {
            k: v[-1] for k, v in parse_qs(url.query).items()
        }

        if parts == ["healthz"] and method == "GET":
            writer.write(encode_response(200, {"ok": True}))
            return
        if parts == ["stats"] and method == "GET":
            writer.write(encode_response(200, self.daemon.stats()))
            return
        if parts == ["jobs"] and method == "POST":
            self._submit(_json_body(body), writer)
            return
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            rest = parts[2:]
            try:
                if not rest and method == "GET":
                    job = self.manager.get(job_id)
                    writer.write(encode_response(200, job.describe()))
                    return
                if rest == ["result"] and method == "GET":
                    await self._result(job_id, query, writer)
                    return
                if rest == ["cancel"] and method == "POST":
                    job = self.manager.cancel(job_id)
                    writer.write(encode_response(200, job.describe()))
                    return
                if rest == ["events"] and method == "GET":
                    await self._events(job_id, writer)
                    return
            except UnknownJob:
                raise HttpError(404, f"no such job {job_id!r}") from None
        raise HttpError(
            405 if parts[:1] in (["jobs"], ["stats"], ["healthz"]) else 404,
            f"no route for {method} {url.path}",
        )

    def _submit(self, body: Any, writer: asyncio.StreamWriter) -> None:
        try:
            job = self.manager.submit(body)
        except BadRequest as exc:
            raise HttpError(400, str(exc)) from None
        except QueueFull as exc:
            raise HttpError(429, str(exc)) from None
        except Draining as exc:
            raise HttpError(503, str(exc)) from None
        writer.write(encode_response(200, job.describe()))

    async def _result(
        self,
        job_id: str,
        query: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        job = self.manager.get(job_id)
        try:
            wait = float(query.get("wait", "0") or "0")
        except ValueError:
            raise HttpError(
                400, f"bad wait value {query.get('wait')!r}"
            ) from None
        if wait > 0 and not job.cancelled:
            try:
                await asyncio.wait_for(
                    job.execution.finished.wait(), timeout=wait
                )
            except asyncio.TimeoutError:
                pass
        response = self.manager.result(job_id)
        if response is None:
            writer.write(encode_response(202, job.describe()))
        else:
            writer.write(encode_response(200, response))

    async def _events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.manager.get(job_id)
        history, live = job.execution.subscribe()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        for event in history:
            writer.write(json.dumps(event).encode("utf-8") + b"\n")
        await writer.drain()
        if job.execution.finished.is_set():
            return
        while True:
            event = await live.get()
            if event is None:
                return
            writer.write(json.dumps(event).encode("utf-8") + b"\n")
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
