"""Synchronous client for the serve daemon (stdlib ``http.client``).

Used by the tests, the examples, and the load benchmark; also a
reasonable template for users scripting against the daemon.  Every
call opens one connection (the daemon is connection-per-request), so a
``ServeClient`` is freely shareable across threads.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Union


class ServeError(Exception):
    """A non-2xx daemon response."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Talk to one daemon at ``host:port``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8571,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8"))
            if response.status >= 400:
                raise ServeError(response.status, data)
            data["_status"] = response.status
            return data
        finally:
            conn.close()

    # -- endpoints ------------------------------------------------------ #

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(
        self,
        circuit: Dict[str, Any],
        pipeline: Union[str, List[Dict[str, Any]]] = "kms",
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        name: Optional[str] = None,
        debug: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit a job; returns the job handle (``job_id``, ``state``,
        ``coalesced``, ...).  Raises :class:`ServeError` 429 on
        backpressure."""
        body: Dict[str, Any] = {
            "circuit": circuit,
            "pipeline": pipeline,
            "priority": priority,
        }
        if params:
            body["params"] = params
        if timeout is not None:
            body["timeout"] = timeout
        if name is not None:
            body["name"] = name
        if debug is not None:
            body["debug"] = debug
        return self._request("POST", "/jobs", body)

    def submit_builtin(self, circuit_name: str, **kwargs) -> Dict[str, Any]:
        return self.submit(
            {"kind": "builtin", "name": circuit_name},
            name=kwargs.pop("name", circuit_name),
            **kwargs,
        )

    def submit_blif(self, text: str, **kwargs) -> Dict[str, Any]:
        return self.submit({"kind": "blif", "text": text}, **kwargs)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def result(
        self, job_id: str, wait: float = 0.0
    ) -> Optional[Dict[str, Any]]:
        """The terminal response, or ``None`` if still running after
        ``wait`` seconds of long-polling."""
        path = f"/jobs/{job_id}/result"
        if wait:
            path += f"?wait={wait:g}"
        response = self._request(
            "GET", path,
            timeout=max(self.timeout, wait + 10.0),
        )
        if response.get("_status") == 202:
            return None
        return response

    def wait(self, job_id: str, timeout: float = 120.0) -> Dict[str, Any]:
        """Block until the job finishes; raises ``TimeoutError`` if it
        does not inside ``timeout`` seconds."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} still running")
            response = self.result(job_id, wait=min(remaining, 30.0))
            if response is not None:
                return response

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's NDJSON progress events (history included),
        ending after the terminal ``{"type": "done"}`` line."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServeError(
                    response.status,
                    json.loads(response.read().decode("utf-8")),
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()
