"""Worker-pool supervisor: crash isolation, timeouts, retries.

The pool owns N *slots*.  Each slot pairs a supervisor thread with a
(respawnable) worker process; the thread blocks on a ``queue.Queue``
inbox for assignments, relays job payloads over the process pipe,
forwards streamed telemetry events, and polls for four ways a job can
end:

* ``done``      -- the worker sent a result (ok or failed);
* ``crashed``   -- the pipe died (worker segfaulted, was OOM-killed,
  or someone ``kill -9``-ed it mid-job): the slot kills/reaps the
  process and the pool respawns it; the job is retried until its
  attempt budget runs out, so a killed worker never drops a request;
* ``timeout``   -- the per-job deadline passed: the worker is killed
  (it is wedged -- there is no safe way to interrupt a SAT solve) and
  replaced; timeouts are *not* retried (a poisoned circuit would just
  poison the next worker);
* ``cancelled`` -- the execution's cancel flag was set while running.

All pool *state* (the priority queue, idle slots, counters) is owned by
the asyncio event-loop thread: slot threads communicate results back
exclusively through ``loop.call_soon_threadsafe``, so there are no
locks and no data races by construction.

Worker processes use the ``spawn`` start method: slots fork from
supervisor threads, and forking a threaded process risks inheriting a
held import lock mid-``import`` -- a deadlocked worker is exactly the
failure this subsystem exists to contain, not to cause.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import multiprocessing
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .worker import worker_main

#: How often a busy slot checks cancel flags / deadlines while waiting
#: on its worker pipe.
POLL_SECONDS = 0.02

_SHUTDOWN = object()


class WorkerSlot:
    """One supervisor thread + one respawnable worker process."""

    def __init__(self, pool: "WorkerPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.inbox: "queue.Queue[Any]" = queue.Queue()
        self.process = None
        self.conn = None
        self.restarts = 0
        self.current: Optional[Any] = None  # execution, for /stats
        self.thread = threading.Thread(
            target=self._loop, name=f"serve-worker-{index}", daemon=True
        )

    # -- process lifecycle (slot thread only) -------------------------- #

    def _spawn(self) -> None:
        ctx = multiprocessing.get_context("spawn")
        parent, child = ctx.Pipe()
        self.process = ctx.Process(
            target=worker_main,
            args=(child, self.pool.cache_dir),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.conn = parent

    def _kill(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5)
            self.process = None

    def _ensure_process(self) -> bool:
        if self.process is not None and self.process.is_alive():
            return True
        self._kill()
        try:
            self._spawn()
        except OSError:
            return False
        self.restarts += 1
        return True

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    # -- job supervision (slot thread only) ---------------------------- #

    def _loop(self) -> None:
        while True:
            item = self.inbox.get()
            if item is _SHUTDOWN:
                self._shutdown_process()
                return
            execution = item
            self.current = execution
            outcome, payload = self._run(execution)
            self.current = None
            self.pool._to_loop(
                self.pool._slot_finished, self, execution, outcome, payload
            )

    def _shutdown_process(self) -> None:
        """Polite stop: ask the idle worker to exit, then reap."""
        if self.conn is not None:
            try:
                self.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        if self.process is not None:
            self.process.join(timeout=2)
        self._kill()

    def _run(self, execution) -> tuple:
        if not self._ensure_process():
            return "crashed", None
        try:
            self.conn.send({
                "payload": execution.payload,
                "attempt": execution.attempts,
            })
        except (OSError, BrokenPipeError, ValueError):
            self._kill()
            return "crashed", None
        timeout = execution.timeout
        if timeout is None:
            timeout = self.pool.default_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if execution.cancel_requested.is_set():
                self._kill()
                return "cancelled", None
            if deadline is not None and time.monotonic() >= deadline:
                self._kill()
                return "timeout", None
            try:
                ready = self.conn.poll(POLL_SECONDS)
            except (OSError, EOFError):
                self._kill()
                return "crashed", None
            if not ready:
                continue
            try:
                kind, data = self.conn.recv()
            except (EOFError, OSError):
                self._kill()
                return "crashed", None
            if kind == "event":
                self.pool._to_loop(self.pool.on_event, execution, data)
            elif kind == "result":
                return "done", data


class WorkerPool:
    """Priority-FIFO dispatch over supervised worker slots.

    ``on_event(execution, event_dict)`` and ``on_done(execution,
    outcome, payload)`` are invoked on the event-loop thread.
    """

    def __init__(
        self,
        size: int,
        loop,
        on_event: Callable[[Any, Dict[str, Any]], None],
        on_done: Callable[[Any, str, Optional[Dict[str, Any]]], None],
        cache_dir: Optional[str] = None,
        retries: int = 1,
        default_timeout: Optional[float] = None,
    ) -> None:
        self.loop = loop
        self.on_event = on_event
        self.on_done = on_done
        self.cache_dir = cache_dir
        self.retries = retries
        self.default_timeout = default_timeout
        self.retried = 0
        self._seq = itertools.count()
        self._retry_seq = itertools.count(-1, -1)
        self._heap: List[tuple] = []
        self._slots = [WorkerSlot(self, i) for i in range(max(1, size))]
        self._idle: List[WorkerSlot] = list(self._slots)
        self._stopped = False

    def start(self) -> None:
        for slot in self._slots:
            slot.thread.start()

    def _to_loop(self, fn, *args) -> None:
        try:
            self.loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop already closed during teardown

    # -- loop-thread API ----------------------------------------------- #

    @property
    def queue_depth(self) -> int:
        """Executions waiting for a slot (running ones excluded)."""
        return sum(
            1 for _, _, e in self._heap if not e.finished.is_set()
        )

    @property
    def busy(self) -> int:
        return len(self._slots) - len(self._idle)

    def enqueue(self, execution) -> None:
        heapq.heappush(
            self._heap, (execution.priority, next(self._seq), execution)
        )
        self._dispatch()

    def _dispatch(self) -> None:
        while self._idle and self._heap and not self._stopped:
            _, _, execution = heapq.heappop(self._heap)
            if execution.finished.is_set():
                continue  # cancelled while queued
            if execution.cancel_requested.is_set():
                self.on_done(execution, "cancelled", None)
                continue
            slot = self._idle.pop()
            execution.attempts += 1
            execution.worker_pid = slot.pid
            self.on_event(execution, {
                "type": "running",
                "attempt": execution.attempts,
                "slot": slot.index,
            })
            slot.inbox.put(execution)

    def _slot_finished(self, slot, execution, outcome, payload) -> None:
        self._idle.append(slot)
        if outcome == "crashed" and not execution.cancel_requested.is_set():
            if execution.attempts <= self.retries:
                self.retried += 1
                # retry ahead of its priority class: the client already
                # waited one full attempt
                heapq.heappush(
                    self._heap,
                    (execution.priority, next(self._retry_seq), execution),
                )
                self._dispatch()
                return
        self.on_done(execution, outcome, payload)
        self._dispatch()

    def idle_now(self) -> bool:
        return not self._heap and len(self._idle) == len(self._slots)

    def stats(self) -> Dict[str, Any]:
        return {
            "size": len(self._slots),
            "busy": self.busy,
            "queued": self.queue_depth,
            "retried": self.retried,
            "workers": [
                {
                    "index": slot.index,
                    "pid": slot.pid,
                    "restarts": slot.restarts,
                    "job": (
                        slot.current.exec_id
                        if slot.current is not None else None
                    ),
                }
                for slot in self._slots
            ],
        }

    async def shutdown(self) -> None:
        """Stop dispatching, stop slot threads, reap worker processes."""
        self._stopped = True
        for slot in self._slots:
            slot.inbox.put(_SHUTDOWN)
        for slot in self._slots:
            while slot.thread.is_alive():
                await asyncio.sleep(0.02)
