"""ROBDD substrate: canonical function representation and equivalence."""

from .bdd import BDD, bdd_equivalent, circuit_bdds
from .reorder import build_under_order, order_cost, sift_order, total_size

__all__ = [
    "BDD",
    "bdd_equivalent",
    "build_under_order",
    "circuit_bdds",
    "order_cost",
    "sift_order",
    "total_size",
]
