"""BDD variable ordering: rebuild-based reordering and greedy search.

The manager in :mod:`repro.bdd.bdd` hash-conses nodes under a fixed
order, so reordering is done by *rebuilding* circuit BDDs under a
candidate order -- simple, safe, and entirely adequate for the
small-to-medium cones this library collapses (ISOP extraction, cone
analysis).  `sift_order` runs a sifting-flavoured greedy search: move
each variable through every position, keep the best.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..network import Circuit
from .bdd import BDD, circuit_bdds


def build_under_order(
    circuit: Circuit, order: Sequence[int]
) -> Tuple[BDD, Dict[int, int]]:
    """Build the circuit's BDDs with PI gids assigned in ``order``.

    ``order`` lists PI gids; position in the list = BDD variable index.
    Returns (manager, gid -> node for every gate).
    """
    if sorted(order) != sorted(circuit.inputs):
        raise ValueError("order must be a permutation of the PIs")
    bdd = BDD(num_vars=len(order))
    var_of_input = {gid: i for i, gid in enumerate(order)}
    _, nodes = circuit_bdds(circuit, bdd, var_of_input)
    return bdd, nodes


def total_size(
    bdd: BDD, nodes: Dict[int, int], roots: Sequence[int]
) -> int:
    """Shared node count of the given roots (the usual cost metric)."""
    seen = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node <= 1 or node in seen:
            continue
        seen.add(node)
        _var, low, high = bdd._nodes[node]
        stack.extend((low, high))
    return len(seen) + 2


def order_cost(circuit: Circuit, order: Sequence[int]) -> int:
    """Total shared BDD size of all primary outputs under an order."""
    bdd, nodes = build_under_order(circuit, order)
    return total_size(bdd, nodes, [nodes[po] for po in circuit.outputs])


def sift_order(
    circuit: Circuit,
    start: Optional[Sequence[int]] = None,
    passes: int = 2,
) -> Tuple[List[int], int]:
    """Greedy sifting by rebuild: returns (best order, its cost).

    For each variable (largest-impact first would need per-level counts;
    we simply iterate), try every position and keep the best.  ``passes``
    full sweeps; each sweep is monotone non-increasing in cost.
    """
    order = list(start) if start is not None else list(circuit.inputs)
    best_cost = order_cost(circuit, order)
    n = len(order)
    for _ in range(passes):
        improved = False
        for gid in list(order):
            current_pos = order.index(gid)
            best_pos, best_here = current_pos, best_cost
            for pos in range(n):
                if pos == current_pos:
                    continue
                candidate = list(order)
                candidate.remove(gid)
                candidate.insert(pos, gid)
                cost = order_cost(circuit, candidate)
                if cost < best_here:
                    best_pos, best_here = pos, cost
            if best_pos != current_pos:
                order.remove(gid)
                order.insert(best_pos, gid)
                best_cost = best_here
                improved = True
        if not improved:
            break
    return order, best_cost
