"""A reduced ordered binary decision diagram (ROBDD) package.

Provides an independent oracle for functional equivalence (canonical
forms: two functions are equal iff their node ids are equal) and for
counting satisfying assignments.  Tests cross-check the SAT-based
equivalence checker and the two-level synthesis package against BDDs.

Classic implementation: a unique table for hash-consing, a computed table
for memoizing ``ite``, complement-free (both polarities stored explicitly)
for simplicity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..network import Circuit, GateType


class BDD:
    """A BDD manager over variables 0..n-1 (index = order position)."""

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = num_vars
        # node id -> (var, low, high); terminals are ids 0 and 1
        self._nodes: List[Tuple[int, int, int]] = [
            (-1, -1, -1),
            (-1, -1, -1),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    ZERO = 0
    ONE = 1

    @property
    def node_count(self) -> int:
        """Total nodes allocated by this manager (growth-budget probe)."""
        return len(self._nodes)

    def add_var(self) -> int:
        """Allocate a new variable, returning its index."""
        self.num_vars += 1
        return self.num_vars - 1

    def var(self, index: int) -> int:
        """The BDD for variable ``index``."""
        if index >= self.num_vars:
            self.num_vars = index + 1
        return self._mk(index, self.ZERO, self.ONE)

    def nvar(self, index: int) -> int:
        """The BDD for the negation of variable ``index``."""
        return self.negate(self.var(index))

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def _top_var(self, *nodes: int) -> int:
        tops = [self._nodes[n][0] for n in nodes if n > 1]
        return min(tops)

    def _cofactors(self, node: int, var: int) -> Tuple[int, int]:
        if node <= 1:
            return node, node
        nvar, low, high = self._nodes[node]
        if nvar == var:
            return low, high
        return node, node

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: f ? g : h.  The universal connective."""
        if f == self.ONE:
            return g
        if f == self.ZERO:
            return h
        if g == h:
            return g
        if g == self.ONE and h == self.ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        var = self._top_var(f, g, h)
        f0, f1 = self._cofactors(f, var)
        g0, g1 = self._cofactors(g, var)
        h0, h1 = self._cofactors(h, var)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(var, low, high)
        self._ite_cache[key] = result
        return result

    # -- boolean connectives ------------------------------------------- #

    def negate(self, f: int) -> int:
        return self.ite(f, self.ZERO, self.ONE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, self.ZERO)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, self.ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.negate(g), g)

    def and_many(self, fs: Iterable[int]) -> int:
        acc = self.ONE
        for f in fs:
            acc = self.apply_and(acc, f)
        return acc

    def or_many(self, fs: Iterable[int]) -> int:
        acc = self.ZERO
        for f in fs:
            acc = self.apply_or(acc, f)
        return acc

    # -- quantification and cofactoring --------------------------------- #

    def restrict(self, f: int, var: int, value: int) -> int:
        """Cofactor of f with variable fixed to 0/1."""
        if f <= 1:
            return f
        fvar, low, high = self._nodes[f]
        if fvar > var:
            return f
        if fvar == var:
            return high if value else low
        return self._mk(
            fvar,
            self.restrict(low, var, value),
            self.restrict(high, var, value),
        )

    def exists(self, f: int, var: int) -> int:
        """Existential quantification (smoothing) of one variable."""
        return self.apply_or(
            self.restrict(f, var, 0), self.restrict(f, var, 1)
        )

    # -- queries --------------------------------------------------------#

    def count_sat(self, f: int) -> int:
        """Number of satisfying assignments over all num_vars variables."""
        cache: Dict[int, int] = {}

        def count(node: int, from_var: int) -> int:
            if node == self.ZERO:
                return 0
            if node == self.ONE:
                return 1 << (self.num_vars - from_var)
            key = node
            if key in cache:
                base = cache[key]
            else:
                var, low, high = self._nodes[node]
                base = count(low, var + 1) + count(high, var + 1)
                cache[key] = base
            var = self._nodes[node][0]
            return base << (var - from_var)

        return count(f, 0)

    def any_sat(self, f: int) -> Optional[Dict[int, int]]:
        """One satisfying assignment (var index -> 0/1), or None."""
        if f == self.ZERO:
            return None
        assignment: Dict[int, int] = {}
        node = f
        while node != self.ONE:
            var, low, high = self._nodes[node]
            if high != self.ZERO:
                assignment[var] = 1
                node = high
            else:
                assignment[var] = 0
                node = low
        return assignment

    def evaluate(self, f: int, assignment: Dict[int, int]) -> int:
        """Evaluate f under a total assignment (var index -> 0/1)."""
        node = f
        while node > 1:
            var, low, high = self._nodes[node]
            node = high if assignment.get(var, 0) else low
        return node

    def size(self, f: int) -> int:
        """Number of nodes reachable from f (including terminals)."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or node <= 1:
                continue
            seen.add(node)
            _, low, high = self._nodes[node]
            stack.extend((low, high))
        return len(seen) + 2


def circuit_bdds(
    circuit: Circuit, manager: Optional[BDD] = None,
    var_of_input: Optional[Dict[int, int]] = None,
) -> Tuple[BDD, Dict[int, int]]:
    """Build BDDs for every gate of a circuit.

    Returns (manager, gid -> bdd node).  PI variable order is circuit
    input order unless ``var_of_input`` maps PI gids to existing manager
    variables (for cross-circuit comparison).
    """
    bdd = manager if manager is not None else BDD()
    if var_of_input is None:
        var_of_input = {}
        for gid in circuit.inputs:
            var_of_input[gid] = bdd.add_var()
    node: Dict[int, int] = {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            node[gid] = bdd.var(var_of_input[gid])
            continue
        ins = [node[circuit.conns[c].src] for c in gate.fanin]
        if gate.gtype is GateType.CONST0:
            node[gid] = bdd.ZERO
        elif gate.gtype is GateType.CONST1:
            node[gid] = bdd.ONE
        elif gate.gtype in (GateType.BUF, GateType.OUTPUT):
            node[gid] = ins[0]
        elif gate.gtype is GateType.NOT:
            node[gid] = bdd.negate(ins[0])
        elif gate.gtype is GateType.AND:
            node[gid] = bdd.and_many(ins)
        elif gate.gtype is GateType.NAND:
            node[gid] = bdd.negate(bdd.and_many(ins))
        elif gate.gtype is GateType.OR:
            node[gid] = bdd.or_many(ins)
        elif gate.gtype is GateType.NOR:
            node[gid] = bdd.negate(bdd.or_many(ins))
        elif gate.gtype is GateType.XOR:
            acc = bdd.ZERO
            for f in ins:
                acc = bdd.apply_xor(acc, f)
            node[gid] = acc
        elif gate.gtype is GateType.XNOR:
            acc = bdd.ZERO
            for f in ins:
                acc = bdd.apply_xor(acc, f)
            node[gid] = bdd.negate(acc)
        else:
            raise ValueError(f"cannot build BDD for {gate.gtype}")
    return bdd, node


def bdd_equivalent(a: Circuit, b: Circuit) -> bool:
    """BDD-based equivalence check (independent of the SAT path).

    Circuits are matched by PI/PO names; shared variables keep the two
    functions in one manager so equality is id equality.
    """
    a_pis = {a.gates[g].name: g for g in a.inputs}
    b_pis = {b.gates[g].name: g for g in b.inputs}
    if set(a_pis) != set(b_pis):
        return False
    a_pos = {a.gates[g].name: g for g in a.outputs}
    b_pos = {b.gates[g].name: g for g in b.outputs}
    if set(a_pos) != set(b_pos):
        return False
    bdd = BDD()
    var_a = {gid: bdd.add_var() for gid in a.inputs}
    _, nodes_a = circuit_bdds(a, bdd, var_a)
    var_b = {b_pis[name]: var_a[a_pis[name]] for name in a_pis}
    _, nodes_b = circuit_bdds(b, bdd, var_b)
    return all(
        nodes_a[a_pos[name]] == nodes_b[b_pos[name]] for name in a_pos
    )
