"""Circuit visualization: Graphviz DOT export and an ASCII listing.

`to_dot` renders the DAG for inspection of KMS transformations (the
paper's figures are exactly such drawings); paths can be highlighted,
which is how the examples show the chosen longest path and the
duplicated chain.  `pretty` gives a compact levelized text listing for
terminals and test failure messages.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .circuit import Circuit
from .gates import GateType

_SHAPES = {
    GateType.INPUT: ("triangle", "lightblue"),
    GateType.OUTPUT: ("invtriangle", "lightblue"),
    GateType.CONST0: ("box", "gray85"),
    GateType.CONST1: ("box", "gray85"),
    GateType.AND: ("box", "white"),
    GateType.NAND: ("box", "white"),
    GateType.OR: ("ellipse", "white"),
    GateType.NOR: ("ellipse", "white"),
    GateType.NOT: ("circle", "white"),
    GateType.BUF: ("circle", "gray95"),
    GateType.XOR: ("hexagon", "white"),
    GateType.XNOR: ("hexagon", "white"),
}


def to_dot(
    circuit: Circuit,
    highlight_conns: Iterable[int] = (),
    highlight_gates: Iterable[int] = (),
    show_delays: bool = True,
) -> str:
    """Serialize the circuit to Graphviz DOT.

    ``highlight_conns`` / ``highlight_gates`` are drawn in red -- pass a
    :class:`repro.timing.Path`'s ``conns``/``gates`` to show a path.
    """
    hot_conns = set(highlight_conns)
    hot_gates = set(highlight_gates)
    lines = [
        f'digraph "{circuit.name}" {{',
        "  rankdir=LR;",
        '  node [fontname="Helvetica", fontsize=10];',
    ]
    for gid, gate in circuit.gates.items():
        shape, fill = _SHAPES[gate.gtype]
        label = gate.name or f"{gate.gtype.value}{gid}"
        if gate.gtype not in (GateType.INPUT, GateType.OUTPUT):
            label = f"{label}\\n{gate.gtype.value}"
            if show_delays and gate.delay:
                label += f" d={gate.delay:g}"
        color = "red" if gid in hot_gates else "black"
        penwidth = 2 if gid in hot_gates else 1
        lines.append(
            f'  n{gid} [label="{label}", shape={shape}, '
            f'style=filled, fillcolor={fill}, color={color}, '
            f"penwidth={penwidth}];"
        )
    for cid, conn in circuit.conns.items():
        attrs = []
        if cid in hot_conns:
            attrs.append('color=red, penwidth=2')
        if show_delays and conn.delay:
            attrs.append(f'label="{conn.delay:g}"')
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  n{conn.src} -> n{conn.dst}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def pretty(circuit: Circuit, max_gates: Optional[int] = None) -> str:
    """A levelized one-gate-per-line listing.

    Example output line::

        [2] g7 = OR(g5, g6)        d=1
    """
    names: Dict[int, str] = {}
    for gid, gate in circuit.gates.items():
        names[gid] = gate.name or f"g{gid}"
    level: Dict[int, int] = {}
    lines: List[str] = [
        f"circuit {circuit.name}: "
        f"{circuit.num_gates()} gates, "
        f"{len(circuit.inputs)} PI, {len(circuit.outputs)} PO"
    ]
    emitted = 0
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        preds = circuit.fanin_gates(gid)
        level[gid] = 1 + max((level[p] for p in preds), default=-1)
        if gate.gtype is GateType.INPUT:
            arrival = circuit.input_arrival.get(gid, 0.0)
            note = f" @t={arrival:g}" if arrival else ""
            lines.append(f"[0] {names[gid]} = input{note}")
            continue
        args = ", ".join(names[p] for p in preds)
        kind = gate.gtype.value
        delay = f"  d={gate.delay:g}" if gate.delay else ""
        lines.append(
            f"[{level[gid]}] {names[gid]} = {kind}({args}){delay}"
        )
        emitted += 1
        if max_gates is not None and emitted >= max_gates:
            lines.append(f"... ({circuit.num_gates() - emitted} more)")
            break
    return "\n".join(lines)
