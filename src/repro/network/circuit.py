"""The combinational network: gates, connections, and structural queries.

Follows Definition 4.1 of the paper: a circuit is a DAG of gates and
*explicit connection objects*.  Connections (not just gate adjacency) are
first-class because

* the paper defines paths as alternating sequences of connections and
  gates (Definition 4.2), allowing two distinct connections between the
  same pair of gates;
* stuck-at faults live on connections (a fanout *branch* is a different
  fault site than the driving *stem*);
* both gates and connections carry delays (``d(g)`` and ``d(c)``).

Primary inputs are INPUT-type gates; primary outputs are OUTPUT-type
marker gates with exactly one fanin and zero delay, so that an *IO-path*
(Theorem 7.2) is simply a path from an INPUT gate to an OUTPUT gate.

Mutation keeps fanin/fanout lists consistent; anything more surgical
(duplication, constant propagation, sweeping) lives in
:mod:`repro.network.transform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .gates import (
    GateType,
    SOURCE_TYPES,
    evaluate,
    is_simple,
)


@dataclass
class Gate:
    """A gate (node) in the network.

    Attributes:
        gid: unique integer id within the circuit.
        gtype: the :class:`GateType`.
        delay: gate delay ``d(g)`` (Definition 4.1).
        name: optional human-readable name (PIs/POs must be named).
        fanin: connection ids feeding this gate, in pin order.
        fanout: connection ids driven by this gate (unordered).
    """

    gid: int
    gtype: GateType
    delay: float = 0.0
    name: Optional[str] = None
    fanin: List[int] = field(default_factory=list)
    fanout: List[int] = field(default_factory=list)

    def __repr__(self) -> str:
        label = self.name or f"g{self.gid}"
        return f"<Gate {label}:{self.gtype.value} d={self.delay:g}>"


@dataclass
class Connection:
    """A connection (edge) between two gates.

    Attributes:
        cid: unique integer id within the circuit.
        src: gid of the driving gate.
        dst: gid of the driven gate.
        delay: connection delay ``d(c)``.
    """

    cid: int
    src: int
    dst: int
    delay: float = 0.0

    def __repr__(self) -> str:
        return f"<Conn {self.cid}: {self.src}->{self.dst} d={self.delay:g}>"


class CircuitError(Exception):
    """Raised on structurally invalid operations on a circuit."""


class Circuit:
    """A combinational logic network.

    The class is a mutable container with consistency-preserving primitive
    operations.  Iteration helpers (topological order, cones, fanin/fanout
    closure) recompute on demand and cache until the next mutation.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.gates: Dict[int, Gate] = {}
        self.conns: Dict[int, Connection] = {}
        self._next_gid = 0
        self._next_cid = 0
        self._inputs: List[int] = []   # gid order = PI order
        self._outputs: List[int] = []  # gid order = PO order
        #: arrival time of each primary input (Section III: "assume the
        #: primary input c0 arrives at time t = 5").  Keyed by PI gid.
        self.input_arrival: Dict[int, float] = {}
        self._topo_cache: Optional[List[int]] = None
        #: monotonically increasing mutation counter.  Every structural
        #: change bumps it, so derived artifacts (the compiled simulation
        #: kernel in :mod:`repro.sim.kernel`) can detect staleness with
        #: one integer compare instead of hashing the network.
        self._version = 0
        #: attached :class:`repro.net.arena.NetArena` mirroring this
        #: circuit as struct-of-arrays, or None.  Every mutation
        #: primitive notifies it so the flat arrays stay fresh in place.
        self._arena = None
        #: partition hints for hierarchical timing: gid groups marking
        #: repeated sub-blocks (emitted by the generators in
        #: :mod:`repro.circuits`, e.g. one group per carry-skip block).
        #: Advisory only -- consumers (:mod:`repro.timing.hier`) validate
        #: against the live netlist and ignore stale entries, so
        #: transforms need not maintain them.
        self.partition_hints: List[List[int]] = []

    # ------------------------------------------------------------------ #
    # construction primitives
    # ------------------------------------------------------------------ #

    def add_gate(
        self,
        gtype: GateType,
        delay: float = 0.0,
        name: Optional[str] = None,
    ) -> int:
        """Add a gate and return its gid."""
        gid = self._next_gid
        self._next_gid += 1
        self.gates[gid] = Gate(gid, gtype, delay, name)
        if gtype is GateType.INPUT:
            self._inputs.append(gid)
            self.input_arrival.setdefault(gid, 0.0)
        elif gtype is GateType.OUTPUT:
            self._outputs.append(gid)
        self._dirty()
        if self._arena is not None:
            self._arena.on_add_gate(gid, gtype, delay)
        return gid

    def add_input(self, name: str, arrival: float = 0.0) -> int:
        """Add a primary input with the given arrival time."""
        gid = self.add_gate(GateType.INPUT, 0.0, name)
        self.set_input_arrival(gid, arrival)
        return gid

    def add_output(self, name: str, src: int, delay: float = 0.0) -> int:
        """Add a primary-output marker driven by gate ``src``."""
        gid = self.add_gate(GateType.OUTPUT, 0.0, name)
        self.connect(src, gid, delay)
        return gid

    def connect(self, src: int, dst: int, delay: float = 0.0) -> int:
        """Add a connection from gate ``src`` to gate ``dst``; return cid."""
        if src not in self.gates or dst not in self.gates:
            raise CircuitError(f"connect: unknown gate {src} or {dst}")
        dgate = self.gates[dst]
        if dgate.gtype in SOURCE_TYPES:
            raise CircuitError(f"cannot drive source gate {dgate}")
        cid = self._next_cid
        self._next_cid += 1
        self.conns[cid] = Connection(cid, src, dst, delay)
        self.gates[src].fanout.append(cid)
        dgate.fanin.append(cid)
        self._dirty()
        if self._arena is not None:
            self._arena.on_connect(cid, src, dst, delay)
        return cid

    def add_simple(
        self,
        gtype: GateType,
        fanin: Iterable[int],
        delay: float = 1.0,
        name: Optional[str] = None,
    ) -> int:
        """Convenience: add a gate and connect its fanin gates in order."""
        gid = self.add_gate(gtype, delay, name)
        for src in fanin:
            self.connect(src, gid)
        return gid

    # ------------------------------------------------------------------ #
    # removal primitives
    # ------------------------------------------------------------------ #

    def remove_connection(self, cid: int) -> None:
        """Remove a connection, keeping fanin/fanout lists consistent."""
        conn = self.conns.pop(cid)
        self.gates[conn.src].fanout.remove(cid)
        self.gates[conn.dst].fanin.remove(cid)
        self._dirty()
        if self._arena is not None:
            self._arena.on_remove_connection(cid)

    def remove_gate(self, gid: int) -> None:
        """Remove a gate and every connection touching it."""
        gate = self.gates[gid]
        for cid in list(gate.fanin) + list(gate.fanout):
            if cid in self.conns:
                self.remove_connection(cid)
        del self.gates[gid]
        if gid in self._inputs:
            self._inputs.remove(gid)
            self.input_arrival.pop(gid, None)
        if gid in self._outputs:
            self._outputs.remove(gid)
        self._dirty()
        if self._arena is not None:
            self._arena.on_remove_gate(gid)

    def move_connection_source(self, cid: int, new_src: int) -> None:
        """Re-source a connection (used for duplication rewiring and for
        the Fig. 2 style rewiring of an input)."""
        conn = self.conns[cid]
        old_src = conn.src
        self.gates[old_src].fanout.remove(cid)
        conn.src = new_src
        self.gates[new_src].fanout.append(cid)
        self._dirty()
        if self._arena is not None:
            self._arena.on_move_source(cid, old_src, new_src)

    # ------------------------------------------------------------------ #
    # attribute setters
    # ------------------------------------------------------------------ #
    # These mirror plain attribute writes (``gate.gtype = ...``) exactly:
    # they do NOT bump :attr:`version` (attribute edits never did, and the
    # proof engine's epoch solver keys on version), but they do notify an
    # attached arena so the flat arrays never go stale.

    def set_gate_type(self, gid: int, gtype: GateType) -> None:
        """Retype a gate in place (constant-propagation degenerations)."""
        self.gates[gid].gtype = gtype
        if self._arena is not None:
            self._arena.on_set_gate_type(gid, gtype)

    def set_gate_delay(self, gid: int, delay: float) -> None:
        """Set a gate's delay ``d(g)`` in place."""
        self.gates[gid].delay = delay
        if self._arena is not None:
            self._arena.on_set_gate_delay(gid, delay)

    def set_connection_delay(self, cid: int, delay: float) -> None:
        """Set a connection's delay ``d(c)`` in place."""
        self.conns[cid].delay = delay
        if self._arena is not None:
            self._arena.on_set_conn_delay(cid, delay)

    def set_input_arrival(self, gid: int, arrival: float) -> None:
        """Set a primary input's arrival time."""
        self.input_arrival[gid] = arrival
        if self._arena is not None:
            self._arena.on_set_arrival(gid, arrival)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def inputs(self) -> List[int]:
        """Primary input gids in creation order."""
        return list(self._inputs)

    @property
    def outputs(self) -> List[int]:
        """Primary output (OUTPUT-marker) gids in creation order."""
        return list(self._outputs)

    def gate(self, gid: int) -> Gate:
        return self.gates[gid]

    def conn(self, cid: int) -> Connection:
        return self.conns[cid]

    def fanin_gates(self, gid: int) -> List[int]:
        """gids driving ``gid``, in pin order."""
        return [self.conns[cid].src for cid in self.gates[gid].fanin]

    def fanout_gates(self, gid: int) -> List[int]:
        """gids driven by ``gid`` (with multiplicity, one per connection)."""
        return [self.conns[cid].dst for cid in self.gates[gid].fanout]

    def fanout_size(self, gid: int) -> int:
        """Number of fanout connections of a gate."""
        return len(self.gates[gid].fanout)

    def input_names(self) -> List[str]:
        return [self.gates[g].name or f"pi{g}" for g in self._inputs]

    def output_names(self) -> List[str]:
        return [self.gates[g].name or f"po{g}" for g in self._outputs]

    def find_input(self, name: str) -> int:
        """gid of the primary input with the given name."""
        for gid in self._inputs:
            if self.gates[gid].name == name:
                return gid
        raise KeyError(f"no primary input named {name!r}")

    def find_output(self, name: str) -> int:
        """gid of the primary output with the given name."""
        for gid in self._outputs:
            if self.gates[gid].name == name:
                return gid
        raise KeyError(f"no primary output named {name!r}")

    def find_gate(self, name: str) -> int:
        """gid of any gate with the given name."""
        for gid, gate in self.gates.items():
            if gate.name == name:
                return gid
        raise KeyError(f"no gate named {name!r}")

    def num_gates(self, logic_only: bool = True) -> int:
        """Gate count; by default counts only logic gates, mirroring the
        paper's Table I circuit-size metric (PIs, POs and constants are
        structural, not "simple gates")."""
        if not logic_only:
            return len(self.gates)
        skip = SOURCE_TYPES | {GateType.OUTPUT}
        return sum(1 for g in self.gates.values() if g.gtype not in skip)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def _dirty(self) -> None:
        self._topo_cache = None
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter: changes iff the structure may have changed."""
        return self._version

    def topological_order(self) -> List[int]:
        """gids in topological order (sources first).

        Raises :class:`CircuitError` if the network has a cycle.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indeg = {gid: len(g.fanin) for gid, g in self.gates.items()}
        ready = sorted(gid for gid, d in indeg.items() if d == 0)
        order: List[int] = []
        queue = list(ready)
        while queue:
            gid = queue.pop()
            order.append(gid)
            for cid in self.gates[gid].fanout:
                dst = self.conns[cid].dst
                indeg[dst] -= 1
                if indeg[dst] == 0:
                    queue.append(dst)
        if len(order) != len(self.gates):
            raise CircuitError("circuit contains a cycle")
        self._topo_cache = order
        return list(order)

    def transitive_fanin(self, gids: Iterable[int]) -> set:
        """Set of gids in the transitive fanin of ``gids`` (inclusive)."""
        if self._arena is not None:
            return self._arena.transitive_fanin(gids)
        seen = set()
        stack = list(gids)
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)
            stack.extend(self.fanin_gates(gid))
        return seen

    def transitive_fanout(self, gids: Iterable[int]) -> set:
        """Set of gids in the transitive fanout of ``gids`` (inclusive)."""
        if self._arena is not None:
            return self._arena.transitive_fanout(gids)
        seen = set()
        stack = list(gids)
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)
            stack.extend(self.fanout_gates(gid))
        return seen

    def depth(self) -> int:
        """Maximum number of logic gates along any path (Definition 4.12)."""
        skip = SOURCE_TYPES | {GateType.OUTPUT}
        best = {gid: 0 for gid in self.gates}
        for gid in self.topological_order():
            gate = self.gates[gid]
            here = 0 if gate.gtype in skip else 1
            pred = max(
                (best[src] for src in self.fanin_gates(gid)), default=0
            )
            best[gid] = pred + here
        return max(best.values(), default=0)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, assignment: Dict[int, int]) -> Dict[int, int]:
        """2-valued simulation: PI gid -> 0/1 in, returns all gate values."""
        values: Dict[int, int] = {}
        for gid in self.topological_order():
            gate = self.gates[gid]
            if gate.gtype is GateType.INPUT:
                values[gid] = assignment[gid]
            else:
                ins = [values[self.conns[c].src] for c in gate.fanin]
                values[gid] = evaluate(gate.gtype, ins)
        return values

    def evaluate_outputs(self, assignment: Dict[int, int]) -> Tuple[int, ...]:
        """2-valued simulation returning PO values in output order."""
        values = self.evaluate(assignment)
        return tuple(values[gid] for gid in self._outputs)

    # ------------------------------------------------------------------ #
    # copying
    # ------------------------------------------------------------------ #

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep structural copy preserving all gids and cids."""
        other = Circuit(name or self.name)
        other._next_gid = self._next_gid
        other._next_cid = self._next_cid
        for gid, gate in self.gates.items():
            other.gates[gid] = Gate(
                gid,
                gate.gtype,
                gate.delay,
                gate.name,
                list(gate.fanin),
                list(gate.fanout),
            )
        for cid, conn in self.conns.items():
            other.conns[cid] = Connection(cid, conn.src, conn.dst, conn.delay)
        other._inputs = list(self._inputs)
        other._outputs = list(self._outputs)
        other.input_arrival = dict(self.input_arrival)
        other.partition_hints = [list(h) for h in self.partition_hints]
        return other

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def is_simple_gate_network(self) -> bool:
        """True if every logic gate is a simple gate (KMS precondition)."""
        skip = SOURCE_TYPES | {GateType.OUTPUT}
        return all(
            is_simple(g.gtype)
            for g in self.gates.values()
            if g.gtype not in skip
        )

    def stats(self) -> Dict[str, int]:
        """Coarse size statistics used by reports."""
        by_type: Dict[str, int] = {}
        for gate in self.gates.values():
            by_type[gate.gtype.value] = by_type.get(gate.gtype.value, 0) + 1
        return {
            "gates": self.num_gates(),
            "connections": len(self.conns),
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "depth": self.depth(),
            **{f"type_{k}": v for k, v in sorted(by_type.items())},
        }

    def __repr__(self) -> str:
        return (
            f"<Circuit {self.name!r}: {self.num_gates()} gates, "
            f"{len(self._inputs)} PI, {len(self._outputs)} PO>"
        )

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates.values())
