"""Logic network substrate: gates, connections, and structural transforms."""

from .gates import (
    GateType,
    SIMPLE_TYPES,
    SOURCE_TYPES,
    controlling_value,
    controlled_output,
    evaluate,
    has_controlling_value,
    is_simple,
    noncontrolling_value,
)
from .circuit import Circuit, CircuitError, Connection, Gate
from .build import Builder
from .transform import (
    add_mux,
    decompose_complex_gates,
    duplicate_chain,
    propagate_constants,
    relabel_compact,
    set_connection_constant,
    sweep,
)
from .draw import pretty, to_dot
from .validate import check, collect_errors

__all__ = [
    "Builder",
    "Circuit",
    "CircuitError",
    "Connection",
    "Gate",
    "GateType",
    "SIMPLE_TYPES",
    "SOURCE_TYPES",
    "add_mux",
    "check",
    "collect_errors",
    "controlled_output",
    "controlling_value",
    "decompose_complex_gates",
    "duplicate_chain",
    "evaluate",
    "has_controlling_value",
    "is_simple",
    "noncontrolling_value",
    "pretty",
    "propagate_constants",
    "to_dot",
    "relabel_compact",
    "set_connection_constant",
    "sweep",
]
