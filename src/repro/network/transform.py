"""Structural transformations on circuits.

These are the mutation building blocks the KMS algorithm (Fig. 3 of the
paper) is made of:

* :func:`set_connection_constant` -- assert a constant on a single
  connection (the "set first edge of P' to constant 0 or 1" step);
* :func:`propagate_constants` -- push constants forward "as far as
  possible, removing useless gates";
* :func:`duplicate_chain` -- Theorem 7.1's duplication of the gates of a
  path prefix so the path becomes single-fanout;
* :func:`sweep` -- remove dead logic and (optionally) zero-delay buffers;
* :func:`decompose_complex_gates` -- rewrite XOR/XNOR into simple gates,
  assigning the complex gate's delay to the last gate of the decomposition
  and zero to the others (Section VI).

Touched-gate sets
-----------------

The KMS building blocks (:func:`set_connection_constant`,
:func:`propagate_constants`, :func:`duplicate_chain`, :func:`sweep`)
additionally return the set of *touched* gates, the contract the
incremental timing engine (:class:`repro.timing.sta.IncrementalSTA`)
consumes.  A gid is touched when the gate still exists in the circuit
and it was newly created, its fanin (pins, sources, or connection/gate
delays) changed, or its fanout set changed.  Gates that were *removed*
are never listed; consumers reconcile against ``circuit.gates`` (a
removed gate's neighbours always appear in the touched set, so every
surviving gate whose timing could have moved is covered).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .circuit import Circuit, CircuitError
from .gates import (
    GateType,
    SOURCE_TYPES,
    controlled_output,
    controlling_value,
    degenerate_single_input_type,
)

_CONST_TYPE = {0: GateType.CONST0, 1: GateType.CONST1}
_CONST_VALUE = {GateType.CONST0: 0, GateType.CONST1: 1}


def constant_value(circuit: Circuit, gid: int) -> Optional[int]:
    """Return 0/1 if gate ``gid`` is a constant source, else None."""
    return _CONST_VALUE.get(circuit.gates[gid].gtype)


def set_connection_constant(
    circuit: Circuit, cid: int, value: int
) -> Tuple[int, Set[int]]:
    """Tie connection ``cid`` to constant ``value``.

    Only this connection is affected -- the driving gate keeps its other
    fanouts.  This is exactly the paper's redundancy-removal primitive: an
    untestable s-a-``value`` fault on a connection means the connection may
    be replaced by the constant without changing circuit function.

    Returns ``(const_gid, touched)``: the gid of the constant gate now
    driving the connection and the touched-gate set.
    """
    if value not in (0, 1):
        raise ValueError(f"constant must be 0 or 1, got {value!r}")
    old_src = circuit.conns[cid].src
    const = circuit.add_gate(_CONST_TYPE[value], 0.0)
    circuit.move_connection_source(cid, const)
    return const, {const, old_src, circuit.conns[cid].dst}


def _make_constant(
    circuit: Circuit, gid: int, value: int, touched: Set[int]
) -> None:
    """Replace logic gate ``gid`` by a constant source, rewiring fanout."""
    gate = circuit.gates[gid]
    const = circuit.add_gate(_CONST_TYPE[value], 0.0)
    touched.add(const)
    for cid in list(gate.fanout):
        touched.add(circuit.conns[cid].dst)
        circuit.move_connection_source(cid, const)
    for cid in list(gate.fanin):
        touched.add(circuit.conns[cid].src)
    circuit.remove_gate(gid)
    touched.discard(gid)


def propagate_constants(
    circuit: Circuit, zero_degenerate_delay: bool = True
) -> Tuple[int, Set[int]]:
    """Propagate constant sources forward as far as possible.

    Rules (for an input tied to constant v):

    * AND/NAND/OR/NOR: if v is the controlling value the gate output is
      constant; otherwise the input is simply deleted;
    * XOR/XNOR: v = 0 deletes the input; v = 1 deletes the input and flips
      the gate's polarity (XOR <-> XNOR);
    * BUF/NOT: the output becomes constant.

    A multi-input gate reduced to one input degenerates to BUF/NOT; per the
    paper's convention its delay (and input-connection delay) is reduced to
    zero when ``zero_degenerate_delay`` -- the gate "is equivalent to a
    wire".  Dead gates left behind are swept.

    Returns ``(removed, touched)``: the number of logic gates removed and
    the touched-gate set.
    """
    before = circuit.num_gates()
    touched: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for gid in circuit.topological_order():
            if gid not in circuit.gates:
                continue
            gate = circuit.gates[gid]
            if gate.gtype in SOURCE_TYPES or gate.gtype is GateType.OUTPUT:
                continue
            const_pins: List[Tuple[int, int]] = []
            for cid in list(gate.fanin):
                val = constant_value(circuit, circuit.conns[cid].src)
                if val is not None:
                    const_pins.append((cid, val))
            if not const_pins:
                continue
            changed = True
            touched.add(gid)
            gtype = gate.gtype
            if gtype in (GateType.BUF, GateType.OUTPUT):
                _make_constant(circuit, gid, const_pins[0][1], touched)
                continue
            if gtype is GateType.NOT:
                _make_constant(circuit, gid, 1 - const_pins[0][1], touched)
                continue
            if gtype in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
                cv = controlling_value(gtype)
                if any(val == cv for _, val in const_pins):
                    _make_constant(
                        circuit, gid, controlled_output(gtype), touched
                    )
                    continue
                for cid, _ in const_pins:  # all noncontrolling: drop pins
                    touched.add(circuit.conns[cid].src)
                    circuit.remove_connection(cid)
            elif gtype in (GateType.XOR, GateType.XNOR):
                flips = 0
                for cid, val in const_pins:
                    flips ^= val
                    touched.add(circuit.conns[cid].src)
                    circuit.remove_connection(cid)
                if flips:
                    circuit.set_gate_type(
                        gid,
                        GateType.XNOR
                        if gtype is GateType.XOR
                        else GateType.XOR,
                    )
            gate = circuit.gates[gid]
            if not gate.fanin:
                # every input was a noncontrolling constant: output is the
                # identity-element result of the gate
                empty = {
                    GateType.AND: 1,
                    GateType.NAND: 0,
                    GateType.OR: 0,
                    GateType.NOR: 1,
                    GateType.XOR: 0,
                    GateType.XNOR: 1,
                }[gate.gtype]
                _make_constant(circuit, gid, empty, touched)
            elif len(gate.fanin) == 1 and gate.gtype not in (
                GateType.BUF,
                GateType.NOT,
            ):
                circuit.set_gate_type(
                    gid, degenerate_single_input_type(gate.gtype)
                )
                if zero_degenerate_delay:
                    circuit.set_gate_delay(gid, 0.0)
                    circuit.set_connection_delay(gate.fanin[0], 0.0)
    _, swept = sweep(circuit)
    touched |= swept
    touched = {g for g in touched if g in circuit.gates}
    return before - circuit.num_gates(), touched


def sweep(
    circuit: Circuit, collapse_buffers: bool = False
) -> Tuple[int, Set[int]]:
    """Remove dead logic: gates with no fanout, and unused constants.

    Primary inputs are always kept (the PI interface is part of the
    circuit's identity -- equivalence checks and Table I reporting assume a
    stable PI list).  With ``collapse_buffers`` every zero-delay BUF is
    bypassed, folding its input-connection delay into each fanout
    connection so all path lengths are preserved exactly.

    Returns ``(removed, touched)``: the number of gates removed and the
    touched-gate set.
    """
    removed = 0
    touched: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for gid in list(circuit.gates):
            gate = circuit.gates.get(gid)
            if gate is None:
                continue
            if gate.gtype in (GateType.INPUT, GateType.OUTPUT):
                continue
            if not gate.fanout:
                for cid in gate.fanin:
                    touched.add(circuit.conns[cid].src)
                circuit.remove_gate(gid)
                removed += 1
                changed = True
    if collapse_buffers:
        for gid in list(circuit.gates):
            gate = circuit.gates.get(gid)
            if gate is None or gate.gtype is not GateType.BUF:
                continue
            if gate.delay != 0.0 or len(gate.fanin) != 1:
                continue
            in_cid = gate.fanin[0]
            in_conn = circuit.conns[in_cid]
            touched.add(in_conn.src)
            for out_cid in list(gate.fanout):
                out_conn = circuit.conns[out_cid]
                circuit.set_connection_delay(
                    out_cid, out_conn.delay + in_conn.delay + gate.delay
                )
                touched.add(out_conn.dst)
                circuit.move_connection_source(out_cid, in_conn.src)
            circuit.remove_gate(gid)
            removed += 1
    touched = {g for g in touched if g in circuit.gates}
    return removed, touched


def duplicate_chain(
    circuit: Circuit,
    chain: Sequence[int],
    path_conns: Sequence[int],
) -> Tuple[Dict[int, int], List[int], Set[int]]:
    """Duplicate the gates of a path prefix (Theorem 7.1 / Fig. 3).

    ``chain`` is the ordered list of gates ``g_0 .. g_k`` along the chosen
    longest path ``P`` up to and including ``n``, the gate closest to the
    output with fanout > 1.  ``path_conns`` is the list of connections
    ``c_0 .. c_k`` where ``c_j`` feeds ``g_j`` along ``P`` (``c_0`` comes
    from the primary input).

    Each duplicate ``g_j'`` has the same type, delay and fanin as ``g_j``
    (connection delays copied), except that the path fanin comes from
    ``g_{j-1}'``.  The caller is responsible for moving the path's fanout
    edge ``e`` of ``n`` onto the returned duplicate of ``n``, which then
    has exactly one fanout.

    Returns ``(mapping, dup_path_conns, touched)`` where ``mapping`` maps
    original gid -> duplicate gid, ``dup_path_conns`` are the new
    connections ``c_0' .. c_k'`` forming the duplicated path prefix, and
    ``touched`` is the touched-gate set (the duplicates plus every gate
    that gained a fanout branch feeding one).
    """
    if len(chain) != len(path_conns):
        raise CircuitError("chain and path_conns must align")
    mapping: Dict[int, int] = {}
    dup_path_conns: List[int] = []
    touched: Set[int] = set()
    for idx, gid in enumerate(chain):
        gate = circuit.gates[gid]
        dup = circuit.add_gate(gate.gtype, gate.delay, None)
        if gate.name:
            circuit.gates[dup].name = f"{gate.name}_dup"
        touched.add(dup)
        path_cid = path_conns[idx]
        for cid in gate.fanin:
            conn = circuit.conns[cid]
            src = conn.src
            if cid == path_cid and src in mapping:
                src = mapping[src]
            touched.add(src)
            new_cid = circuit.connect(src, dup, conn.delay)
            if cid == path_cid:
                dup_path_conns.append(new_cid)
        mapping[gid] = dup
    return mapping, dup_path_conns, touched


def decompose_complex_gates(circuit: Circuit) -> int:
    """Rewrite every XOR/XNOR into simple gates, in place.

    Per Section VI: "In converting a complex gate to an equivalent
    connection of simple gates, the last gate is assigned a delay equal to
    the delay of the complex gate.  The other gates are assigned delays of
    zero."

    A 2-input XOR becomes OR + NAND + AND (3 gates, the AND carrying the
    delay) -- the decomposition consistent with the paper's Table I gate
    counts for carry-skip adders.  XNOR becomes AND + NOR + ... the dual
    (OR of AND and NOR).  k-input XOR/XNOR gates are first balanced into a
    tree of 2-input gates.

    Returns the number of complex gates rewritten.
    """
    rewritten = 0
    for gid in list(circuit.gates):
        gate = circuit.gates.get(gid)
        if gate is None or gate.gtype not in (GateType.XOR, GateType.XNOR):
            continue
        rewritten += 1
        srcs = [circuit.conns[c].src for c in gate.fanin]
        if len(srcs) == 1:
            circuit.set_gate_type(
                gid,
                GateType.BUF if gate.gtype is GateType.XOR else GateType.NOT,
            )
            continue
        invert = gate.gtype is GateType.XNOR
        # balanced tree of 2-input xors, all zero delay
        frontier = list(srcs)
        while len(frontier) > 2:
            nxt = []
            for i in range(0, len(frontier) - 1, 2):
                a, b = frontier[i], frontier[i + 1]
                nxt.append(_xor2(circuit, a, b, 0.0))
            if len(frontier) % 2:
                nxt.append(frontier[-1])
            frontier = nxt
        a, b = frontier
        last = (
            _xnor2(circuit, a, b, gate.delay)
            if invert
            else _xor2(circuit, a, b, gate.delay)
        )
        for cid in list(gate.fanout):
            circuit.move_connection_source(cid, last)
        circuit.remove_gate(gid)
    return rewritten


def _xor2(circuit: Circuit, a: int, b: int, delay: float) -> int:
    """a XOR b = AND(OR(a, b), NAND(a, b)); the final AND takes ``delay``."""
    o = circuit.add_simple(GateType.OR, [a, b], 0.0)
    n = circuit.add_simple(GateType.NAND, [a, b], 0.0)
    return circuit.add_simple(GateType.AND, [o, n], delay)


def _xnor2(circuit: Circuit, a: int, b: int, delay: float) -> int:
    """a XNOR b = OR(AND(a, b), NOR(a, b)); the final OR takes ``delay``."""
    n = circuit.add_simple(GateType.AND, [a, b], 0.0)
    r = circuit.add_simple(GateType.NOR, [a, b], 0.0)
    return circuit.add_simple(GateType.OR, [n, r], delay)


def add_mux(
    circuit: Circuit, sel: int, when0: int, when1: int, delay: float = 0.0
) -> int:
    """Build a 2:1 multiplexer from simple gates; the final OR carries
    ``delay`` per the complex-gate conversion rule.

    Returns the gid of the OR gate computing
    ``sel' * when0 + sel * when1``.
    """
    inv = circuit.add_simple(GateType.NOT, [sel], 0.0)
    a0 = circuit.add_simple(GateType.AND, [inv, when0], 0.0)
    a1 = circuit.add_simple(GateType.AND, [sel, when1], 0.0)
    return circuit.add_simple(GateType.OR, [a0, a1], delay)


def relabel_compact(circuit: Circuit) -> Circuit:
    """Return a fresh copy with densely renumbered gids/cids.

    KMS iterations leave gaps in the id spaces; compaction keeps derived
    artifacts (CNF variable maps, reports) tidy.  PI/PO order is preserved.
    """
    fresh = Circuit(circuit.name)
    gid_map: Dict[int, int] = {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        new = fresh.add_gate(gate.gtype, gate.delay, gate.name)
        gid_map[gid] = new
        if gate.gtype is GateType.INPUT:
            fresh.input_arrival[new] = circuit.input_arrival.get(gid, 0.0)
        for cid in gate.fanin:
            conn = circuit.conns[cid]
            fresh.connect(gid_map[conn.src], new, conn.delay)
    # preserve PI/PO ordering of the original
    fresh._inputs = [gid_map[g] for g in circuit.inputs]
    fresh._outputs = [gid_map[g] for g in circuit.outputs]
    return fresh
