"""A small fluent builder for constructing circuits by signal name.

`Circuit` works with integer gids, which is the right currency for the
algorithms but tedious for humans.  :class:`Builder` lets examples, tests
and generators write

    b = Builder("half_adder")
    a, c = b.inputs("a", "c")
    b.output("s", b.xor(a, c, delay=2))
    b.output("co", b.and_(a, c))
    circuit = b.done()

All gate factories return gids, so builder and raw `Circuit` calls mix
freely.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .circuit import Circuit
from .gates import GateType
from .transform import add_mux


class Builder:
    """Fluent construction wrapper around :class:`Circuit`."""

    def __init__(self, name: str = "circuit") -> None:
        self.circuit = Circuit(name)

    # -- interface ----------------------------------------------------- #

    def input(self, name: str, arrival: float = 0.0) -> int:
        return self.circuit.add_input(name, arrival)

    def inputs(self, *names: str, arrival: float = 0.0) -> Tuple[int, ...]:
        return tuple(self.input(n, arrival) for n in names)

    def input_bus(self, prefix: str, width: int) -> List[int]:
        """Add ``width`` inputs named ``prefix0 .. prefix{width-1}``
        (least-significant first)."""
        return [self.input(f"{prefix}{i}") for i in range(width)]

    def output(self, name: str, src: int) -> int:
        return self.circuit.add_output(name, src)

    def output_bus(self, prefix: str, srcs: Iterable[int]) -> List[int]:
        return [
            self.output(f"{prefix}{i}", s) for i, s in enumerate(srcs)
        ]

    # -- gate factories ------------------------------------------------ #

    def _gate(
        self,
        gtype: GateType,
        fanin: Iterable[int],
        delay: float,
        name: Optional[str],
    ) -> int:
        return self.circuit.add_simple(gtype, fanin, delay, name)

    def and_(self, *srcs: int, delay: float = 1.0, name: str = None) -> int:
        return self._gate(GateType.AND, srcs, delay, name)

    def or_(self, *srcs: int, delay: float = 1.0, name: str = None) -> int:
        return self._gate(GateType.OR, srcs, delay, name)

    def nand(self, *srcs: int, delay: float = 1.0, name: str = None) -> int:
        return self._gate(GateType.NAND, srcs, delay, name)

    def nor(self, *srcs: int, delay: float = 1.0, name: str = None) -> int:
        return self._gate(GateType.NOR, srcs, delay, name)

    def not_(self, src: int, delay: float = 1.0, name: str = None) -> int:
        return self._gate(GateType.NOT, [src], delay, name)

    def buf(self, src: int, delay: float = 0.0, name: str = None) -> int:
        return self._gate(GateType.BUF, [src], delay, name)

    def xor(self, *srcs: int, delay: float = 2.0, name: str = None) -> int:
        """A complex XOR gate (decompose before running KMS)."""
        return self._gate(GateType.XOR, srcs, delay, name)

    def xnor(self, *srcs: int, delay: float = 2.0, name: str = None) -> int:
        return self._gate(GateType.XNOR, srcs, delay, name)

    def xor_simple(self, a: int, b: int, delay: float = 2.0) -> int:
        """XOR pre-decomposed into OR/NAND/AND with ``delay`` on the AND --
        the paper's Table-I-consistent 3-gate realization."""
        o = self.or_(a, b, delay=0.0)
        n = self.nand(a, b, delay=0.0)
        return self.and_(o, n, delay=delay)

    def mux(self, sel: int, when0: int, when1: int, delay: float = 2.0) -> int:
        """2:1 MUX from simple gates; the final OR carries ``delay``."""
        return add_mux(self.circuit, sel, when0, when1, delay)

    def const(self, value: int) -> int:
        gtype = GateType.CONST1 if value else GateType.CONST0
        return self.circuit.add_gate(gtype, 0.0)

    # -- finish ---------------------------------------------------------#

    def done(self) -> Circuit:
        """Return the built circuit (no copy; the builder is disposable)."""
        return self.circuit
