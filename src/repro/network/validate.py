"""Structural validation of circuits.

`check` is used liberally in tests and in the KMS algorithm's *checked*
mode: after every transformation the circuit must still be a well-formed
combinational network (Definition 4.1).
"""

from __future__ import annotations

from typing import List

from .circuit import Circuit, CircuitError
from .gates import GateType, SOURCE_TYPES, max_fanin, min_fanin


def check(circuit: Circuit) -> None:
    """Raise :class:`CircuitError` on any structural inconsistency.

    Checked invariants:

    * gate/connection cross-references are consistent;
    * fanin arities are legal for each gate type;
    * the graph is acyclic;
    * every OUTPUT gate has exactly one fanin and no fanout;
    * primary input names are unique (when present);
    * delays are non-negative.
    """
    errors = collect_errors(circuit)
    if errors:
        raise CircuitError("; ".join(errors))


def collect_errors(circuit: Circuit) -> List[str]:
    """Return a list of human-readable structural problems (empty if OK)."""
    errors: List[str] = []
    for cid, conn in circuit.conns.items():
        if conn.cid != cid:
            errors.append(f"conn {cid} has mismatched id {conn.cid}")
        if conn.src not in circuit.gates:
            errors.append(f"conn {cid} has dangling src {conn.src}")
        elif cid not in circuit.gates[conn.src].fanout:
            errors.append(f"conn {cid} missing from fanout of {conn.src}")
        if conn.dst not in circuit.gates:
            errors.append(f"conn {cid} has dangling dst {conn.dst}")
        elif cid not in circuit.gates[conn.dst].fanin:
            errors.append(f"conn {cid} missing from fanin of {conn.dst}")
        if conn.delay < 0:
            errors.append(f"conn {cid} has negative delay")
    for gid, gate in circuit.gates.items():
        if gate.gid != gid:
            errors.append(f"gate {gid} has mismatched id {gate.gid}")
        for cid in gate.fanin:
            if cid not in circuit.conns or circuit.conns[cid].dst != gid:
                errors.append(f"gate {gid} fanin list stale (conn {cid})")
        for cid in gate.fanout:
            if cid not in circuit.conns or circuit.conns[cid].src != gid:
                errors.append(f"gate {gid} fanout list stale (conn {cid})")
        n = len(gate.fanin)
        if n < min_fanin(gate.gtype) or n > max_fanin(gate.gtype):
            errors.append(
                f"gate {gid} ({gate.gtype.value}) has illegal fanin arity {n}"
            )
        if gate.delay < 0:
            errors.append(f"gate {gid} has negative delay")
        if gate.gtype is GateType.OUTPUT and gate.fanout:
            errors.append(f"output marker {gid} must not drive anything")
        if gate.gtype in SOURCE_TYPES and gate.fanin:
            errors.append(f"source gate {gid} must not have fanin")
    names = [circuit.gates[g].name for g in circuit.inputs]
    if any(n is None for n in names):
        errors.append("all primary inputs must be named")
    elif len(set(names)) != len(names):
        errors.append("primary input names must be unique")
    out_names = [circuit.gates[g].name for g in circuit.outputs]
    if any(n is None for n in out_names):
        errors.append("all primary outputs must be named")
    try:
        circuit.topological_order()
    except CircuitError as exc:
        errors.append(str(exc))
    return errors
