"""Gate types and their Boolean semantics.

The paper (Definition 4.1) models a combinational circuit as a DAG of
*gates* and *connections*.  The KMS algorithm itself (Section VI) requires
the network to consist only of *simple gates* -- gates that either have a
well-defined controlling value (AND/OR/NAND/NOR) or no side inputs at all
(NOT/BUF).  Complex gates such as XOR and MUX are decomposed into simple
gates before the algorithm runs; per Section VI the last gate of such a
decomposition carries the complex gate's delay and the rest carry zero.

This module defines the gate vocabulary, controlling/noncontrolling values
and plain 2-valued evaluation.  Multi-valued evaluation (X and D-calculus)
lives in :mod:`repro.sim`.
"""

from __future__ import annotations

import enum
from typing import Sequence


class GateType(enum.Enum):
    """The vocabulary of gate types understood by the library."""

    INPUT = "input"    # primary input; no fanin
    CONST0 = "const0"  # constant 0 source; no fanin
    CONST1 = "const1"  # constant 1 source; no fanin
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    OUTPUT = "output"  # primary-output marker; exactly one fanin, delay 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateType.{self.name}"


#: Gate types with no fanin connections.
SOURCE_TYPES = frozenset({GateType.INPUT, GateType.CONST0, GateType.CONST1})

#: Gate types that may appear in a network handed to the KMS algorithm.
#: (INPUT/CONST/OUTPUT are structural and always allowed.)
SIMPLE_TYPES = frozenset(
    {
        GateType.BUF,
        GateType.NOT,
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
    }
)

#: Gate types whose output inverts the "core" function (NAND/NOR/NOT/XNOR).
INVERTING_TYPES = frozenset(
    {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR}
)

_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}


def is_simple(gate_type: GateType) -> bool:
    """Return True if ``gate_type`` is a simple gate in the paper's sense."""
    return gate_type in SIMPLE_TYPES


def has_controlling_value(gate_type: GateType) -> bool:
    """Return True if the gate type has a controlling input value."""
    return gate_type in _CONTROLLING


def controlling_value(gate_type: GateType) -> int:
    """Controlling value (Definition 4.9) for AND/NAND (0) and OR/NOR (1).

    Raises ``ValueError`` for gate types without one (XOR has none; NOT/BUF
    have a single input so the notion is vacuous).
    """
    try:
        return _CONTROLLING[gate_type]
    except KeyError:
        raise ValueError(f"{gate_type} has no controlling value") from None


def noncontrolling_value(gate_type: GateType) -> int:
    """Noncontrolling value (Definition 4.9): 1 for AND/NAND, 0 for OR/NOR."""
    return 1 - controlling_value(gate_type)


def controlled_output(gate_type: GateType) -> int:
    """Gate output when some input carries the controlling value."""
    cv = controlling_value(gate_type)
    out = cv if gate_type in (GateType.AND, GateType.OR) else 1 - cv
    # AND: controlling 0 -> out 0; OR: controlling 1 -> out 1;
    # NAND: controlling 0 -> out 1; NOR: controlling 1 -> out 0.
    if gate_type is GateType.AND:
        out = 0
    elif gate_type is GateType.OR:
        out = 1
    elif gate_type is GateType.NAND:
        out = 1
    elif gate_type is GateType.NOR:
        out = 0
    return out


def min_fanin(gate_type: GateType) -> int:
    """Minimum number of fanin connections a gate of this type may have."""
    if gate_type in SOURCE_TYPES:
        return 0
    if gate_type in (GateType.BUF, GateType.NOT, GateType.OUTPUT):
        return 1
    return 1  # degenerate 1-input AND/OR etc. are legal (act as BUF/NOT)


def max_fanin(gate_type: GateType) -> float:
    """Maximum number of fanin connections (inf for AND/OR family)."""
    if gate_type in SOURCE_TYPES:
        return 0
    if gate_type in (GateType.BUF, GateType.NOT, GateType.OUTPUT):
        return 1
    return float("inf")


def evaluate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """2-valued evaluation of a gate.

    ``inputs`` are 0/1 values in pin order.  Source gates take no inputs
    (CONST0/CONST1 return their constant; INPUT cannot be evaluated).
    """
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type is GateType.INPUT:
        raise ValueError("primary inputs have no gate function")
    if gate_type in (GateType.BUF, GateType.OUTPUT):
        (a,) = inputs
        return a
    if gate_type is GateType.NOT:
        (a,) = inputs
        return 1 - a
    if gate_type is GateType.AND:
        return int(all(inputs))
    if gate_type is GateType.NAND:
        return 1 - int(all(inputs))
    if gate_type is GateType.OR:
        return int(any(inputs))
    if gate_type is GateType.NOR:
        return 1 - int(any(inputs))
    if gate_type is GateType.XOR:
        return sum(inputs) & 1
    if gate_type is GateType.XNOR:
        return 1 - (sum(inputs) & 1)
    raise ValueError(f"unknown gate type {gate_type}")  # pragma: no cover


def degenerate_single_input_type(gate_type: GateType) -> GateType:
    """What a multi-input gate becomes when reduced to a single input.

    Used during constant propagation (Theorem 7.2 setup): a 2-input AND
    whose other input became noncontrolling degenerates to a wire (BUF);
    inverting gates degenerate to NOT.  The paper keeps the gate with its
    delay zeroed; we model the same thing by converting the type and letting
    the caller zero the delay.
    """
    if gate_type in (GateType.AND, GateType.OR, GateType.BUF, GateType.XOR):
        return GateType.BUF
    if gate_type in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR):
        return GateType.NOT
    raise ValueError(f"{gate_type} cannot degenerate to single input")
