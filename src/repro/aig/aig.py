"""A compact And-Inverter Graph with two-level structural hashing.

An AIG represents logic with exactly two primitives -- two-input AND
nodes and complemented edges -- which makes structural identity checks
O(1) hash lookups and gives every rewriting engine one canonical
currency.  This is the substrate of modern redundancy removal and
SAT sweeping (Teslenko & Dubrova, *A Fast Heuristic Algorithm for
Redundancy Removal*; Kuehlmann et al., *Robust Boolean Reasoning*):
most equivalences collapse *combinationally*, at node-creation time,
before simulation or SAT ever run.

Encoding conventions (the standard AIGER ones):

* a *node* is a small integer id; node 0 is the constant-FALSE node;
* a *literal* is ``2 * node + phase`` where phase 1 marks a complemented
  edge, so ``lit ^ 1`` negates and ``lit >> 1`` is the node;
* literal 0 is constant false, literal 1 constant true;
* AND-node fanin literals always refer to *earlier* nodes, so node id
  order is a topological order by construction.

Node creation (:meth:`Aig.add_and`) applies, in order: constant folding
(``x & 0``, ``x & 1``, ``x & x``, ``x & !x``), *one-level* rewriting
against the fanin structure of either operand (containment,
contradiction, and substitution -- e.g. ``a & !(a & b) -> a & !b``),
*two-level* rewriting against both operands' grandchildren, and finally
the structural hash table.  The absorption law ``a | (a & b) = a`` --
the shape plain redundancy removal leaves behind -- folds away here
without any SAT call.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: The constant-false literal (node 0, positive phase).
LIT_FALSE = 0
#: The constant-true literal (node 0, complemented).
LIT_TRUE = 1


def lit_node(lit: int) -> int:
    """Node id of a literal."""
    return lit >> 1


def lit_phase(lit: int) -> int:
    """1 when the literal is a complemented edge."""
    return lit & 1


def lit_make(node: int, phase: int = 0) -> int:
    """Literal for ``node`` with the given phase."""
    return (node << 1) | phase


def lit_neg(lit: int) -> int:
    """The complemented literal."""
    return lit ^ 1


class AigError(Exception):
    """Raised on structurally invalid AIG operations."""


class Aig:
    """A structurally-hashed And-Inverter Graph.

    Nodes are appended only; the graph never reorders, so node id order
    is always topological.  Dangling nodes (created then superseded by a
    rewrite or a fraig merge) are legal and simply ignored by cone-based
    consumers.
    """

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        #: fanin literals per node; inputs use (-1, -1), node 0 (0, 0).
        self._fanin0: List[int] = [0]
        self._fanin1: List[int] = [0]
        self._inputs: List[int] = []  # node ids in PI order
        self._input_name: Dict[int, str] = {}
        self._outputs: List[Tuple[str, int]] = []  # (name, literal)
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: str) -> int:
        """Add a primary input; returns its (positive) literal."""
        node = len(self._fanin0)
        self._fanin0.append(-1)
        self._fanin1.append(-1)
        self._inputs.append(node)
        self._input_name[node] = name
        return lit_make(node)

    def add_output(self, name: str, lit: int) -> None:
        """Register ``lit`` as the primary output ``name``."""
        if lit_node(lit) >= len(self._fanin0):
            raise AigError(f"output {name!r} references unknown literal {lit}")
        self._outputs.append((name, lit))

    def add_and(self, a: int, b: int) -> int:
        """AND of two literals, maximally simplified; returns a literal.

        Never creates a node when constant folding, one-level or
        two-level rewriting, or the structural hash can answer first.
        """
        n = len(self._fanin0)
        if lit_node(a) >= n or lit_node(b) >= n:
            raise AigError(f"unknown literal in AND({a}, {b})")
        # constant folding and trivial cases
        if a == LIT_FALSE or b == LIT_FALSE or a == lit_neg(b):
            return LIT_FALSE
        if a == LIT_TRUE:
            return b
        if b == LIT_TRUE:
            return a
        if a == b:
            return a
        if a > b:
            a, b = b, a
        rewritten = self._rewrite(a, b)
        if rewritten is not None:
            return rewritten
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanin0)
            self._fanin0.append(a)
            self._fanin1.append(b)
            self._strash[key] = node
        return lit_make(node)

    def _and_fanins(self, lit: int) -> Optional[Tuple[int, int]]:
        """Fanin literals when ``lit`` points at an AND node, else None."""
        node = lit_node(lit)
        f0 = self._fanin0[node]
        if node == 0 or f0 < 0:
            return None
        return f0, self._fanin1[node]

    def _rewrite(self, a: int, b: int) -> Optional[int]:
        """One- and two-level rewriting of AND(a, b); None = no rule fired.

        Substitution rules recurse through :meth:`add_and`; every
        recursive operand is a strict subterm (smaller node id), so the
        recursion terminates.
        """
        fa = self._and_fanins(a)
        fb = self._and_fanins(b)
        # one-level: compare each operand against the other's fanins
        for x, f in ((a, fb), (b, fa)):
            if f is None:
                continue
            y0, y1 = f
            other = b if x is a else a
            if lit_phase(other) == 0:
                # x & (y0 & y1)
                if x == lit_neg(y0) or x == lit_neg(y1):
                    return LIT_FALSE  # contradiction
                if x == y0 or x == y1:
                    return other  # containment
            else:
                # x & !(y0 & y1)
                if x == lit_neg(y0) or x == lit_neg(y1):
                    return x  # x=1 forces y_i=0 forces !(y0&y1)=1
                if x == y0:
                    return self.add_and(x, lit_neg(y1))  # substitution
                if x == y1:
                    return self.add_and(x, lit_neg(y0))
        if fa is None or fb is None:
            return None
        a0, a1 = fa
        b0, b1 = fb
        pa, pb = lit_phase(a), lit_phase(b)
        if pa == 0 and pb == 0:
            # (a0 & a1) & (b0 & b1): any complementary pair is 0
            if (a0 == lit_neg(b0) or a0 == lit_neg(b1)
                    or a1 == lit_neg(b0) or a1 == lit_neg(b1)):
                return LIT_FALSE
        elif pa == 0 and pb == 1:
            return self._rewrite_pos_neg(a, a0, a1, b0, b1)
        elif pa == 1 and pb == 0:
            return self._rewrite_pos_neg(b, b0, b1, a0, a1)
        return None

    def _rewrite_pos_neg(
        self, pos: int, p0: int, p1: int, n0: int, n1: int
    ) -> Optional[int]:
        """Rules for (p0 & p1) & !(n0 & n1) where ``pos`` = p0 & p1."""
        if n0 == lit_neg(p0) or n0 == lit_neg(p1) \
                or n1 == lit_neg(p0) or n1 == lit_neg(p1):
            return pos  # pos=1 forces some n_i=0, so the NAND side is 1
        if n0 in (p0, p1) and n1 in (p0, p1):
            return LIT_FALSE  # pos=1 forces n0=n1=1, NAND side is 0
        if n0 in (p0, p1):
            return self.add_and(pos, lit_neg(n1))
        if n1 in (p0, p1):
            return self.add_and(pos, lit_neg(n0))
        return None

    # -- derived connectives ------------------------------------------- #

    def add_or(self, a: int, b: int) -> int:
        return lit_neg(self.add_and(lit_neg(a), lit_neg(b)))

    def add_xor(self, a: int, b: int) -> int:
        return lit_neg(self.add_and(
            lit_neg(self.add_and(a, lit_neg(b))),
            lit_neg(self.add_and(lit_neg(a), b)),
        ))

    def add_and_many(self, lits: Iterable[int]) -> int:
        acc = LIT_TRUE
        for lit in lits:
            acc = self.add_and(acc, lit)
        return acc

    def add_or_many(self, lits: Iterable[int]) -> int:
        acc = LIT_FALSE
        for lit in lits:
            acc = self.add_or(acc, lit)
        return acc

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def inputs(self) -> List[int]:
        """Input node ids in PI order."""
        return list(self._inputs)

    @property
    def outputs(self) -> List[Tuple[str, int]]:
        """(name, literal) pairs in PO order."""
        return list(self._outputs)

    def input_name(self, node: int) -> str:
        return self._input_name[node]

    def input_names(self) -> List[str]:
        return [self._input_name[n] for n in self._inputs]

    def find_input(self, name: str) -> int:
        """Node id of the input with the given name."""
        for node in self._inputs:
            if self._input_name[node] == name:
                return node
        raise KeyError(f"no AIG input named {name!r}")

    def is_input(self, node: int) -> bool:
        return self._fanin0[node] < 0

    def is_and(self, node: int) -> bool:
        return node != 0 and self._fanin0[node] >= 0

    def fanins(self, node: int) -> Tuple[int, int]:
        """Fanin literals of an AND node."""
        if not self.is_and(node):
            raise AigError(f"node {node} is not an AND node")
        return self._fanin0[node], self._fanin1[node]

    def num_nodes(self) -> int:
        """All nodes including the constant and inputs."""
        return len(self._fanin0)

    def num_inputs(self) -> int:
        return len(self._inputs)

    def num_ands(self, live_only: bool = False) -> int:
        """AND-node count; ``live_only`` counts only output cones."""
        if not live_only:
            return len(self._fanin0) - 1 - len(self._inputs)
        return sum(1 for n in self.cone() if self.is_and(n))

    def and_nodes(self) -> Iterable[int]:
        """AND node ids in topological (id) order."""
        for node in range(1, len(self._fanin0)):
            if self._fanin0[node] >= 0:
                yield node

    def cone(self, lits: Optional[Iterable[int]] = None) -> List[int]:
        """Transitive-fanin node ids of ``lits`` (default: all outputs),
        in topological (ascending id) order."""
        if lits is None:
            lits = [lit for _, lit in self._outputs]
        seen = set()
        stack = [lit_node(lit) for lit in lits]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                stack.append(lit_node(f0))
                stack.append(lit_node(f1))
        return sorted(seen)

    def levels(self) -> int:
        """Depth in AND nodes of the deepest output cone."""
        level = [0] * len(self._fanin0)
        for node in self.and_nodes():
            f0, f1 = self.fanins(node)
            level[node] = 1 + max(level[lit_node(f0)], level[lit_node(f1)])
        return max(
            (level[lit_node(lit)] for _, lit in self._outputs), default=0
        )

    def stats(self) -> Dict[str, int]:
        return {
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "ands": self.num_ands(),
            "ands_live": self.num_ands(live_only=True),
            "levels": self.levels(),
        }

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #

    def simulate(
        self, packed_inputs: Mapping[int, int], width: int
    ) -> List[int]:
        """Bit-parallel simulation of ``width`` packed patterns.

        ``packed_inputs`` maps input *node id* -> packed word (bit i =
        pattern i's value); returns one word per node, indexed by node
        id.  Mirrors :func:`repro.sim.parallel.simulate_packed`.
        """
        mask = (1 << width) - 1
        values = [0] * len(self._fanin0)
        for node in self._inputs:
            values[node] = packed_inputs.get(node, 0) & mask
        for node in self.and_nodes():
            f0, f1 = self.fanins(node)
            v0 = values[lit_node(f0)] ^ (mask if lit_phase(f0) else 0)
            v1 = values[lit_node(f1)] ^ (mask if lit_phase(f1) else 0)
            values[node] = v0 & v1
        return values

    def lit_value(self, values: Sequence[int], lit: int, mask: int) -> int:
        """Packed value of a literal given node values from simulate()."""
        value = values[lit_node(lit)]
        return (value ^ mask) & mask if lit_phase(lit) else value & mask

    def evaluate(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """2-valued single-pattern evaluation: PI name -> 0/1 in,
        PO name -> 0/1 out."""
        packed = {
            node: assignment[self._input_name[node]] & 1
            for node in self._inputs
        }
        values = self.simulate(packed, 1)
        return {
            name: self.lit_value(values, lit, 1)
            for name, lit in self._outputs
        }

    def random_patterns(
        self, width: int, rng: random.Random
    ) -> Dict[int, int]:
        """Uniform random packed input words for ``width`` patterns."""
        return {node: rng.getrandbits(width) for node in self._inputs}

    def __repr__(self) -> str:
        return (
            f"<Aig {self.name!r}: {self.num_ands()} ands, "
            f"{len(self._inputs)} PI, {len(self._outputs)} PO>"
        )
