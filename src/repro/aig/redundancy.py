"""Fast stuck-at redundancy identification on AIG edges.

Teslenko & Dubrova's observation (*A Fast Heuristic Algorithm for
Redundancy Removal*, PAPERS.md) is that redundancy removal gets cheap
when it runs on a structurally-hashed AIG: hashing and constant folding
have already removed everything *structurally* redundant, random
simulation disposes of almost every remaining fault candidate in bulk,
and only the thin residue of simulation-quiet edges needs a proof.
This module follows that funnel, with the heuristic's verdicts made
exact by a per-edge SAT confirmation (UNSAT is an airtight
untestability proof, mirroring :mod:`repro.atpg.satatpg`):

1. simulate the fault-free graph once, bit-parallel;
2. per fanin edge of each live AND node, replay only the fault's
   *fanout cone* with the edge forced to 0/1 -- any output word that
   changes proves the fault testable and drops the candidate;
3. the survivors get a miter-style SAT query each; UNSAT edges are
   reported as redundant.

The KMS cross-check harness runs this over every Table I output as an
independent confirmation of Theorem 7.1's irredundancy claim -- a
different fault model (AIG edges vs. network connections), a different
engine, and the same verdict: zero redundancies after KMS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .aig import Aig, lit_node, lit_phase
from .fraig import SweepSolver


@dataclass(frozen=True)
class RedundantEdge:
    """A stuck-at-redundant fanin edge of an AND node.

    ``pin`` selects the fanin (0 or 1); ``stuck`` is the value forced
    onto the edge *after* the edge's own complement marker, i.e. the
    value seen by the AND.  A stuck-at-1 redundancy means the edge can
    be removed (the node collapses onto its other fanin); stuck-at-0
    means the node itself is replaceable by constant false.
    """

    node: int
    pin: int
    stuck: int

    def describe(self, aig: Aig) -> str:
        lit = aig.fanins(self.node)[self.pin]
        edge = f"{'!' if lit_phase(lit) else ''}n{lit_node(lit)}"
        return f"edge {edge} -> n{self.node} stuck-at-{self.stuck}"


def _fanout_cones(aig: Aig) -> Dict[int, List[int]]:
    """Per live node: its transitive-fanout AND nodes (inclusive),
    ascending -- the replay schedule for fault simulation."""
    live = aig.cone()
    live_set = set(live)
    fanout: Dict[int, List[int]] = {n: [] for n in live}
    for node in live:
        if not aig.is_and(node):
            continue
        for f in aig.fanins(node):
            src = lit_node(f)
            if src in live_set:
                fanout[src].append(node)
    cones: Dict[int, List[int]] = {}
    for root in live:
        seen = {root}
        stack = [root]
        while stack:
            for nxt in fanout[stack.pop()]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        cones[root] = sorted(n for n in seen if aig.is_and(n))
    return cones


def _replay_outputs_differ(
    aig: Aig,
    values: List[int],
    cone: List[int],
    node: int,
    forced: int,
    out_words: List[Tuple[int, int]],
    mask: int,
) -> bool:
    """Re-simulate ``cone`` with ``node`` forced to ``forced``; True if
    any output word changes (the fault is detected by some pattern)."""
    patched: Dict[int, int] = {node: forced & mask}

    def value(lit: int) -> int:
        v = patched.get(lit_node(lit), values[lit_node(lit)])
        return (v ^ mask) if lit_phase(lit) else v

    for n in cone:
        if n == node:
            continue
        f0, f1 = aig.fanins(n)
        patched[n] = value(f0) & value(f1) & mask
    for po_node, po_word in out_words:
        if po_node in patched and patched[po_node] != po_word:
            return True
    return False


def redundant_edges(
    aig: Aig,
    patterns: int = 128,
    seed: int = 2025,
    conflict_limit: Optional[int] = None,
) -> List[RedundantEdge]:
    """All stuck-at-redundant fanin edges of the live AND nodes.

    Exact (UNSAT-backed) under the default unlimited SAT budget; with a
    ``conflict_limit`` an undecided edge is conservatively reported as
    *not* redundant.  ``patterns`` sizes the simulation prefilter only
    -- correctness never depends on it.
    """
    rng = random.Random(seed)
    width = max(1, patterns)
    mask = (1 << width) - 1
    values = aig.simulate(aig.random_patterns(width, rng), width)
    cones = _fanout_cones(aig)
    out_words = [
        (lit_node(lit), values[lit_node(lit)]) for _, lit in aig.outputs
    ]

    suspects: List[Tuple[RedundantEdge, int]] = []
    for node in cones:
        if not aig.is_and(node):
            continue
        f0, f1 = aig.fanins(node)
        for pin, (this, other) in enumerate(((f0, f1), (f1, f0))):
            base = aig.lit_value(values, this, mask)
            other_v = aig.lit_value(values, other, mask)
            for stuck in (0, 1):
                forced_edge = 0 if stuck == 0 else mask
                forced_node = forced_edge & other_v
                # when the forced edge agrees with every simulated
                # pattern the replay cannot change anything: the fault
                # is simulation-quiet and goes straight to SAT
                if forced_edge != base and _replay_outputs_differ(
                    aig, values, cones[node], node, forced_node,
                    out_words, mask,
                ):
                    continue
                suspects.append((RedundantEdge(node, pin, stuck), forced_node))

    redundant: List[RedundantEdge] = []
    if not suspects:
        return redundant
    sweeper = SweepSolver(aig, conflict_limit=conflict_limit)
    for edge, _ in suspects:
        if _edge_is_redundant(aig, sweeper, edge, cones):
            redundant.append(edge)
    return redundant


def _edge_is_redundant(
    aig: Aig,
    sweeper: SweepSolver,
    edge: RedundantEdge,
    cones: Dict[int, List[int]],
) -> bool:
    """SAT proof: no input makes the faulty graph differ at an output.

    The faulty cone is encoded *into the sweeper's solver* with fresh
    variables (sharing every off-cone variable with the good encoding),
    and the difference constraint is assumed through a gating literal,
    so one incremental solver serves every edge query.
    """
    solver = sweeper.solver
    solver.reset_to_root()
    cone = cones[edge.node]
    cone_set = set(cone)
    faulty_var: Dict[int, int] = {}

    def faulty_lit(lit: int) -> int:
        node = lit_node(lit)
        if node in faulty_var:
            v = faulty_var[node]
            return -v if lit_phase(lit) else v
        return sweeper.cnf_lit(lit)

    for n in cone:
        v = solver.new_var()
        if n == edge.node:
            f_other = aig.fanins(n)[1 - edge.pin]
            if edge.stuck == 0:
                solver.add_clause((-v,))
            else:
                o = faulty_lit(f_other)  # other pin still fault-free here
                solver.add_clause((-v, o))
                solver.add_clause((v, -o))
        else:
            f0, f1 = aig.fanins(n)
            l0, l1 = faulty_lit(f0), faulty_lit(f1)
            solver.add_clause((-v, l0))
            solver.add_clause((-v, l1))
            solver.add_clause((v, -l0, -l1))
        faulty_var[n] = v

    diff_lits = []
    for _, lit in aig.outputs:
        if lit_node(lit) not in cone_set:
            continue  # fault cannot reach this output
        good, bad = sweeper.cnf_lit(lit), faulty_lit(lit)
        d = solver.new_var()
        solver.add_clause((-d, good, bad))
        solver.add_clause((-d, -good, -bad))
        diff_lits.append(d)
    if not diff_lits:
        return True  # fault touches no output cone at all
    gate = solver.new_var()
    solver.add_clause([-gate] + diff_lits)
    solver.prefer_variables(
        sweeper._var[n] for n in aig.inputs if n in sweeper._var
    )
    status = solver.solve((gate,), conflict_limit=sweeper.conflict_limit)
    return status is False


def remove_redundancies(
    aig: Aig,
    patterns: int = 128,
    seed: int = 2025,
    max_rounds: int = 64,
) -> Tuple[Aig, List[RedundantEdge]]:
    """Iteratively remove redundant edges until none remain.

    Removal can create and destroy other redundancies (the KMS paper's
    central observation), so each round recomputes the set; one edge is
    applied per round, mirroring :mod:`repro.atpg.redundancy`.
    """
    removed: List[RedundantEdge] = []
    current = aig
    for _ in range(max_rounds):
        edges = redundant_edges(current, patterns=patterns, seed=seed)
        if not edges:
            return current, removed
        edge = edges[0]
        removed.append(edge)
        current = _apply_edge_fault(current, edge)
    raise RuntimeError("redundancy removal did not converge")


def _apply_edge_fault(aig: Aig, edge: RedundantEdge) -> Aig:
    """Rebuild with the (proved-redundant) edge tied to its stuck value."""
    new = Aig(aig.name)
    lit_map: Dict[int, int] = {0: 0}
    for node in range(1, aig.num_nodes()):
        if aig.is_input(node):
            lit_map[node] = new.add_input(aig.input_name(node))
            continue
        if not aig.is_and(node):
            continue
        f0, f1 = aig.fanins(node)
        m0 = lit_map[lit_node(f0)] ^ lit_phase(f0)
        m1 = lit_map[lit_node(f1)] ^ lit_phase(f1)
        if node == edge.node:
            if edge.stuck == 0:
                lit_map[node] = 0
                continue
            lit_map[node] = m1 if edge.pin == 0 else m0
            continue
        lit_map[node] = new.add_and(m0, m1)
    for name, lit in aig.outputs:
        new.add_output(name, lit_map[lit_node(lit)] ^ lit_phase(lit))
    return new
