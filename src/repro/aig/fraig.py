"""SAT sweeping (fraiging): prove simulation-suggested node merges.

The fraig loop (Kuehlmann et al.; the workhorse behind ABC's ``fraig``
command) interleaves three engines, cheapest first:

1. **structural hashing** -- rebuilding the graph through
   :meth:`Aig.add_and` merges everything the two-level rewriter can see;
2. **bit-parallel random simulation** -- 64-way packed patterns
   (:mod:`repro.sim.parallel`'s trick, transplanted onto AIG node
   arrays) partition the surviving nodes into candidate-equivalence
   classes: only nodes whose signatures match up to complement can
   possibly be equal;
3. **incremental SAT** -- one :class:`repro.sat.Solver` per sweep
   answers a miter query per candidate pair.  UNSAT merges the node
   onto its class representative; SAT yields a counterexample input
   pattern that is *fed back into the simulation*, refining every class
   at once so one refuted pair never comes back as a candidate.

Each proved merge immediately shrinks the cones of later queries (the
rebuilt graph routes through representatives), which is what makes the
sweep fast in practice even though it may issue many SAT calls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sat.solver import Solver
from ..sim.kernel import CompiledAig, kernel_enabled
from .aig import Aig, lit_node, lit_phase


class SweepSolver:
    """Incremental SAT oracle over (a growing) AIG.

    Encodes node cones into one CDCL solver on demand -- a node's
    clauses are added the first time a query touches it -- and keeps
    the solver alive across queries so learned clauses accumulate.
    The AIG may keep growing between queries; only queried cones are
    ever encoded.
    """

    def __init__(self, aig: Aig, conflict_limit: Optional[int] = None) -> None:
        self.aig = aig
        self.conflict_limit = conflict_limit
        self.solver = Solver()
        self._var: Dict[int, int] = {}

    def _var_of(self, node: int) -> int:
        """CNF variable of ``node``, encoding its cone if needed."""
        var = self._var.get(node)
        if var is not None:
            return var
        # iterative cone encoding (recursion-free: cones can be deep)
        stack = [node]
        while stack:
            top = stack[-1]
            if top in self._var:
                stack.pop()
                continue
            if not self.aig.is_and(top):
                var = self.solver.new_var()
                self._var[top] = var
                if top == 0:
                    self.solver.add_clause((-var,))
                stack.pop()
                continue
            f0, f1 = self.aig.fanins(top)
            pending = [n for n in (lit_node(f0), lit_node(f1))
                       if n not in self._var]
            if pending:
                stack.extend(pending)
                continue
            var = self.solver.new_var()
            self._var[top] = var
            l0, l1 = self.cnf_lit(f0), self.cnf_lit(f1)
            self.solver.add_clause((-var, l0))
            self.solver.add_clause((-var, l1))
            self.solver.add_clause((var, -l0, -l1))
            stack.pop()
        return self._var[node]

    def cnf_lit(self, lit: int) -> int:
        """Solver literal for an AIG literal."""
        var = self._var_of(lit_node(lit))
        return -var if lit_phase(lit) else var

    def _prefer_inputs(self) -> None:
        self.solver.prefer_variables(
            self._var[n] for n in self.aig.inputs if n in self._var
        )

    def prove_equal(
        self, a: int, b: int
    ) -> Tuple[Optional[bool], Optional[Dict[int, int]]]:
        """Decide whether AIG literals ``a`` and ``b`` are equivalent.

        Returns ``(verdict, counterexample)``: ``(True, None)`` proved
        equal, ``(False, pattern)`` refuted with an input-node -> 0/1
        pattern, ``(None, None)`` undecided under the conflict limit.
        """
        status, model = self._solve_distinct([(a, b)])
        if status is None:
            return None, None
        if status is False:
            return True, None
        return False, self.counterexample(model)

    def solve_any_distinct(
        self, pairs: List[Tuple[int, int]]
    ) -> Tuple[Optional[bool], Optional[Dict[int, int]]]:
        """One call deciding whether *any* pair can differ.

        ``(False, None)`` proves every pair equivalent -- the single
        final miter call of the fraig-first equivalence path.
        """
        status, model = self._solve_distinct(pairs)
        if status:
            return True, self.counterexample(model)
        return status, None

    def _solve_distinct(
        self, pairs: List[Tuple[int, int]]
    ) -> Tuple[Optional[bool], Optional[Dict[int, bool]]]:
        self.solver.reset_to_root()
        diff_lits = []
        for a, b in pairs:
            la, lb = self.cnf_lit(a), self.cnf_lit(b)
            d = self.solver.new_var()
            # d -> (la xor lb); the reverse direction is unnecessary
            # because d is only ever assumed true.
            self.solver.add_clause((-d, la, lb))
            self.solver.add_clause((-d, -la, -lb))
            diff_lits.append(d)
        if len(diff_lits) > 1:
            gate = self.solver.new_var()
            self.solver.add_clause([-gate] + diff_lits)
            assumption = gate
        else:
            assumption = diff_lits[0]
        self._prefer_inputs()
        status = self.solver.solve(
            (assumption,), conflict_limit=self.conflict_limit
        )
        if status:
            return True, self.solver.model()
        return status, None

    def counterexample(self, model: Dict[int, bool]) -> Dict[int, int]:
        """Input-node -> 0/1 pattern from a satisfying model."""
        return {
            node: int(model.get(self._var[node], False))
            for node in self.aig.inputs
            if node in self._var
        }


@dataclass
class FraigStats:
    """Work accounting for one sweep."""

    ands_before: int = 0
    ands_after: int = 0
    structural_merges: int = 0
    sat_proved: int = 0
    sat_refuted: int = 0
    sat_undecided: int = 0
    patterns: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class FraigResult:
    """A swept AIG plus the old-node -> new-literal map."""

    aig: Aig
    lit_map: Dict[int, int]
    stats: FraigStats = field(default_factory=FraigStats)

    def map_lit(self, lit: int) -> int:
        """New-graph literal for an old-graph literal."""
        return self.lit_map[lit_node(lit)] ^ lit_phase(lit)


def _canonical(sig: int, mask: int) -> int:
    """Phase-normalized signature: complement-equal nodes share a key."""
    return (sig ^ mask) & mask if sig & 1 else sig & mask


def fraig(
    aig: Aig,
    seed: int = 0,
    words: int = 2,
    conflict_limit: Optional[int] = 1000,
) -> FraigResult:
    """Sweep ``aig`` into a functionally-reduced graph.

    ``words`` 64-bit words of seeded random patterns form the initial
    candidate classes; every SAT refutation appends its counterexample
    pattern and re-partitions, so classes only ever refine.  Nodes whose
    proof exceeds ``conflict_limit`` stay unmerged (sound, possibly
    non-minimal); ``conflict_limit=None`` sweeps to completion.
    """
    rng = random.Random(seed)
    width = max(1, words) * 64
    patterns = aig.random_patterns(width, rng)
    # the swept graph is read-only during the sweep: compile its flat
    # simulation schedule once and route both the signature pass and
    # every counterexample refinement through it (REPRO_SIM_LEGACY
    # falls back to the interpreted Aig.simulate as the A/B oracle)
    sim = CompiledAig(aig) if kernel_enabled() else aig
    sigs = sim.simulate(patterns, width)

    new = Aig(aig.name)
    stats = FraigStats(ands_before=aig.num_ands())
    lit_map: Dict[int, int] = {0: 0}
    new_input_of_old: Dict[int, int] = {}
    sweeper = SweepSolver(new, conflict_limit=conflict_limit)
    # canonical signature -> distinct representative old nodes
    reps: Dict[int, List[int]] = {}
    processed: List[int] = []

    def refine(pattern: Dict[int, int]) -> None:
        """Append one counterexample pattern and re-partition."""
        nonlocal width
        old_pattern = {
            old: pattern.get(new_input_of_old[old], 0)
            for old in aig.inputs
        }
        bits = sim.simulate(old_pattern, 1)
        for node in range(len(sigs)):
            sigs[node] = (sigs[node] << 1) | bits[node]
        width += 1
        stats.patterns = width
        reps.clear()
        mask = (1 << width) - 1
        for node in processed:
            reps.setdefault(_canonical(sigs[node], mask), []).append(node)

    stats.patterns = width
    for old in range(1, aig.num_nodes()):
        if aig.is_input(old):
            new_lit = new.add_input(aig.input_name(old))
            new_input_of_old[old] = lit_node(new_lit)
        elif aig.is_and(old):
            f0, f1 = aig.fanins(old)
            new_lit = new.add_and(
                lit_map[lit_node(f0)] ^ lit_phase(f0),
                lit_map[lit_node(f1)] ^ lit_phase(f1),
            )
        else:  # pragma: no cover - nodes are inputs or ANDs
            continue
        # search the node's candidate class for a proved-equal rep
        while True:
            mask = (1 << width) - 1
            key = _canonical(sigs[old], mask)
            merged = False
            refuted = False
            for rep in reps.get(key, ()):
                phase = 0 if sigs[rep] == sigs[old] else 1
                rep_lit = lit_map[rep] ^ phase
                if rep_lit == new_lit:
                    stats.structural_merges += 1
                    merged = True
                    break
                if lit_node(rep_lit) == lit_node(new_lit):
                    continue  # same node, wrong phase: not equal
                verdict, cex = sweeper.prove_equal(new_lit, rep_lit)
                if verdict is True:
                    stats.sat_proved += 1
                    new_lit = rep_lit
                    merged = True
                    break
                if verdict is False:
                    stats.sat_refuted += 1
                    refine(cex)
                    refuted = True
                    break
                stats.sat_undecided += 1
            if merged or not refuted:
                break
            # signatures changed: retry against the refined class
        if not merged:
            mask = (1 << width) - 1
            reps.setdefault(_canonical(sigs[old], mask), []).append(old)
            processed.append(old)
        lit_map[old] = new_lit

    for name, lit in aig.outputs:
        new.add_output(name, lit_map[lit_node(lit)] ^ lit_phase(lit))
    stats.ands_after = new.num_ands(live_only=True)
    return FraigResult(aig=new, lit_map=lit_map, stats=stats)
