"""Lossless ``Circuit`` <-> AIG conversion.

Every gate type in :mod:`repro.network.gates` maps onto AND nodes and
complemented edges; PI and PO *names* are preserved exactly, so a
round-tripped circuit plugs straight back into the name-matched
equivalence checkers.  What the AIG deliberately forgets is timing --
gate and connection delays have no AIG currency -- so conversion is
lossless *functionally*, not temporally; callers that need delays
re-derive them downstream (the fraig engine stage documents this).

``circuit_to_aig`` accepts an existing AIG plus a name -> literal map so
two circuits can be encoded into one graph with shared inputs: that is
the miter construction of the fraig-first equivalence path, where
structural hashing alone already merges every cone the two circuits
share.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..network import Circuit, GateType
from .aig import LIT_FALSE, LIT_TRUE, Aig, lit_make, lit_neg, lit_node, lit_phase


def circuit_to_aig(
    circuit: Circuit,
    into: Optional[Aig] = None,
    input_lits: Optional[Dict[str, int]] = None,
) -> Tuple[Aig, Dict[int, int]]:
    """Encode a circuit into an AIG; returns (aig, gid -> literal map).

    ``into`` encodes into an existing graph (new inputs are created only
    for PI names absent from ``input_lits``); outputs are registered
    under their circuit names.
    """
    aig = into if into is not None else Aig(circuit.name)
    shared = dict(input_lits or {})
    lit: Dict[int, int] = {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        gtype = gate.gtype
        if gtype is GateType.INPUT:
            name = gate.name or f"pi{gid}"
            if name in shared:
                lit[gid] = shared[name]
            else:
                lit[gid] = shared[name] = aig.add_input(name)
            continue
        if gtype is GateType.CONST0:
            lit[gid] = LIT_FALSE
            continue
        if gtype is GateType.CONST1:
            lit[gid] = LIT_TRUE
            continue
        ins = [lit[circuit.conns[c].src] for c in gate.fanin]
        if gtype in (GateType.BUF, GateType.OUTPUT):
            lit[gid] = ins[0]
            if gtype is GateType.OUTPUT:
                aig.add_output(gate.name or f"po{gid}", ins[0])
            continue
        if gtype is GateType.NOT:
            lit[gid] = lit_neg(ins[0])
        elif gtype is GateType.AND:
            lit[gid] = aig.add_and_many(ins)
        elif gtype is GateType.NAND:
            lit[gid] = lit_neg(aig.add_and_many(ins))
        elif gtype is GateType.OR:
            lit[gid] = aig.add_or_many(ins)
        elif gtype is GateType.NOR:
            lit[gid] = lit_neg(aig.add_or_many(ins))
        elif gtype in (GateType.XOR, GateType.XNOR):
            acc = ins[0]
            for nxt in ins[1:]:
                acc = aig.add_xor(acc, nxt)
            lit[gid] = acc if gtype is GateType.XOR else lit_neg(acc)
        else:  # pragma: no cover - the vocabulary above is exhaustive
            raise ValueError(f"cannot convert gate type {gtype}")
    return aig, lit


def aig_to_circuit(aig: Aig, name: Optional[str] = None) -> Circuit:
    """Rebuild a circuit from the live cones of an AIG.

    AND nodes become 2-input AND gates (unit delay); complemented edges
    become shared NOT gates (zero delay -- inverters are free in the
    AIG cost model); dangling nodes are dropped.  PI/PO names survive
    unchanged, including constant and direct-PI outputs.
    """
    circuit = Circuit(name or aig.name)
    gid_of_node: Dict[int, int] = {}
    for node in aig.inputs:
        gid_of_node[node] = circuit.add_input(aig.input_name(node))
    live = set(aig.cone())
    const_gid: Dict[int, int] = {}

    def const(value: int) -> int:
        if value not in const_gid:
            const_gid[value] = circuit.add_gate(
                GateType.CONST1 if value else GateType.CONST0, 0.0
            )
        return const_gid[value]

    inverter: Dict[int, int] = {}

    def gid_of_lit(lit: int) -> int:
        node = lit_node(lit)
        if node == 0:
            return const(lit_phase(lit))
        gid = gid_of_node[node]
        if not lit_phase(lit):
            return gid
        if gid not in inverter:
            inverter[gid] = circuit.add_simple(
                GateType.NOT, [gid], delay=0.0
            )
        return inverter[gid]

    for node in sorted(live):
        if not aig.is_and(node):
            continue
        f0, f1 = aig.fanins(node)
        gid_of_node[node] = circuit.add_simple(
            GateType.AND, [gid_of_lit(f0), gid_of_lit(f1)], delay=1.0
        )
    for po_name, lit in aig.outputs:
        circuit.add_output(po_name, gid_of_lit(lit))
    return circuit


def miter_aig(a: Circuit, b: Circuit) -> Tuple[Aig, Dict[str, Tuple[int, int]]]:
    """Encode two circuits into one AIG with shared PIs.

    Returns the combined graph and, per PO name, the pair of output
    literals ``(lit_in_a, lit_in_b)``.  Raises ``ValueError`` on PI/PO
    interface mismatch (a harness bug, not an inequivalence), matching
    :func:`repro.sat.equivalence.check_equivalence`.
    """
    a_pis = {a.gates[g].name for g in a.inputs}
    b_pis = {b.gates[g].name for g in b.inputs}
    if a_pis != b_pis:
        raise ValueError(f"PI mismatch: {sorted(a_pis ^ b_pis)}")
    a_pos = {a.gates[g].name: g for g in a.outputs}
    b_pos = {b.gates[g].name: g for g in b.outputs}
    if set(a_pos) != set(b_pos):
        raise ValueError(f"PO mismatch: {sorted(set(a_pos) ^ set(b_pos))}")
    aig = Aig(f"miter({a.name},{b.name})")
    aig, lit_a = circuit_to_aig(a, into=aig)
    shared = {aig.input_name(node): lit_make(node) for node in aig.inputs}
    aig, lit_b = circuit_to_aig(b, into=aig, input_lits=shared)
    pairs = {
        po_name: (lit_a[a_pos[po_name]], lit_b[b_pos[po_name]])
        for po_name in a_pos
    }
    return aig, pairs
