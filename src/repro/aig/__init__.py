"""And-Inverter Graph subsystem: structural hashing, fraiging, redundancy.

The AIG is the fast combinational substrate under the verify pipeline:
``Circuit`` networks convert losslessly (:mod:`repro.aig.convert`),
two-level structural hashing collapses shared and trivially-equal cones
at node creation (:mod:`repro.aig.aig`), SAT sweeping proves the
simulation-suggested remainder (:mod:`repro.aig.fraig`), and a fast
stuck-at redundancy pass cross-checks KMS irredundancy claims
(:mod:`repro.aig.redundancy`).  See ``docs/AIG.md``.
"""

from .aig import (
    LIT_FALSE,
    LIT_TRUE,
    Aig,
    AigError,
    lit_make,
    lit_neg,
    lit_node,
    lit_phase,
)
from .convert import aig_to_circuit, circuit_to_aig, miter_aig
from .fraig import FraigResult, FraigStats, SweepSolver, fraig
from .redundancy import RedundantEdge, redundant_edges, remove_redundancies

__all__ = [
    "Aig",
    "AigError",
    "FraigResult",
    "FraigStats",
    "LIT_FALSE",
    "LIT_TRUE",
    "RedundantEdge",
    "SweepSolver",
    "aig_to_circuit",
    "circuit_to_aig",
    "fraig",
    "lit_make",
    "lit_neg",
    "lit_node",
    "lit_phase",
    "miter_aig",
    "redundant_edges",
    "remove_redundancies",
]
