"""Sequential circuits: latches around a combinational core, and the
paper's Section I reduction (KMS on the extracted core)."""

from .sequential import (
    Latch,
    SequentialCircuit,
    kms_sequential,
)
from .machines import accumulator, mod_counter

__all__ = [
    "Latch",
    "SequentialCircuit",
    "accumulator",
    "kms_sequential",
    "mod_counter",
]
