"""Sequential workload generators: counters and accumulators.

Realistic machines whose combinational cores are the paper's adders, so
the sequential story (cycle time = core delay; KMS shortens or preserves
it) is exercised on hardware-shaped examples rather than toys.
"""

from __future__ import annotations

from typing import Optional

from ..circuits.adders import carry_skip_adder, ripple_carry_adder
from ..network import Builder
from .sequential import Latch, SequentialCircuit


def accumulator(
    nbits: int,
    block_size: Optional[int] = None,
    name: Optional[str] = None,
) -> SequentialCircuit:
    """An n-bit accumulator: state <- state + in (+0 carry).

    ``block_size`` selects a carry-skip core (the interesting case: its
    redundancy lives inside a sequential machine); None gives
    ripple-carry.
    """
    core = (
        carry_skip_adder(nbits, block_size)
        if block_size
        else ripple_carry_adder(nbits)
    )
    core.name = name or f"acc_{nbits}"
    # adder interface: a* = state, b* = input, cin tied by a latch? keep
    # cin a true PI (carry input pin of the accumulator)
    latches = [
        Latch(
            name=f"r{i}",
            data_output=f"s{i}",
            state_input=f"a{i}",
            init=0,
        )
        for i in range(nbits)
    ]
    return SequentialCircuit(core, latches, core.name)


def mod_counter(nbits: int, name: Optional[str] = None) -> SequentialCircuit:
    """A free-running n-bit binary counter: state <- state + 1.

    Built from half-adder slices (XOR/AND), fully irredundant -- the
    control case next to the redundant carry-skip accumulator.
    """
    b = Builder(name or f"counter_{nbits}")
    en = b.input("en")
    state = [b.input(f"q{i}") for i in range(nbits)]
    carry = en
    for i in range(nbits):
        b.output(f"d{i}", b.xor_simple(state[i], carry))
        carry = b.and_(state[i], carry, delay=1.0)
    b.output("carry_out", carry)
    core = b.done()
    latches = [
        Latch(name=f"q{i}_ff", data_output=f"d{i}", state_input=f"q{i}")
        for i in range(nbits)
    ]
    return SequentialCircuit(core, latches, core.name)
