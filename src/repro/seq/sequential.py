"""Synchronous sequential circuits and combinational extraction.

Section I of the paper: "This algorithm may be generalized to sequential
circuits by extracting the combinational portion from the sequential
circuit since the cycle time of a synchronous sequential circuit is
determined by the delay of the combinational portions between latches."

:class:`SequentialCircuit` is a single-clock netlist of latches wrapped
around a combinational core.  Latch outputs become pseudo primary
inputs, latch inputs pseudo primary outputs; the cycle time is the
delay of that extracted core, and redundancy removal runs on it
unchanged (full-scan assumption, standard for stuck-at ATPG of
sequential logic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..network import Circuit, CircuitError


@dataclass
class Latch:
    """An edge-triggered state element.

    Attributes:
        name: unique latch name.
        data_output: name of the combinational PO feeding the latch D pin.
        state_input: name of the combinational PI driven by the latch Q.
        init: initial state (0 or 1).
    """

    name: str
    data_output: str
    state_input: str
    init: int = 0


class SequentialCircuit:
    """A combinational core plus latches connecting POs back to PIs.

    The core's PI set = true primary inputs + latch state inputs; its PO
    set = true primary outputs + latch data inputs.  The class keeps the
    partitioning explicit so timing and testability questions can be
    asked about the right objects.
    """

    def __init__(
        self,
        core: Circuit,
        latches: List[Latch],
        name: Optional[str] = None,
    ) -> None:
        self.name = name or f"{core.name}_seq"
        self.core = core
        self.latches = list(latches)
        self._validate()

    def _validate(self) -> None:
        pi_names = set(self.core.input_names())
        po_names = set(self.core.output_names())
        seen = set()
        for latch in self.latches:
            if latch.name in seen:
                raise CircuitError(f"duplicate latch {latch.name!r}")
            seen.add(latch.name)
            if latch.state_input not in pi_names:
                raise CircuitError(
                    f"latch {latch.name!r}: state input "
                    f"{latch.state_input!r} is not a core PI"
                )
            if latch.data_output not in po_names:
                raise CircuitError(
                    f"latch {latch.name!r}: data output "
                    f"{latch.data_output!r} is not a core PO"
                )
            if latch.init not in (0, 1):
                raise CircuitError(
                    f"latch {latch.name!r}: init must be 0/1"
                )
        state_inputs = [l.state_input for l in self.latches]
        data_outputs = [l.data_output for l in self.latches]
        if len(set(state_inputs)) != len(state_inputs):
            raise CircuitError("two latches drive the same state input")
        if len(set(data_outputs)) != len(data_outputs):
            raise CircuitError("two latches sample the same data output")

    # -- interface ------------------------------------------------------#

    def primary_inputs(self) -> List[str]:
        """True primary inputs (excluding latch state inputs)."""
        states = {l.state_input for l in self.latches}
        return [n for n in self.core.input_names() if n not in states]

    def primary_outputs(self) -> List[str]:
        """True primary outputs (excluding latch data pins)."""
        data = {l.data_output for l in self.latches}
        return [n for n in self.core.output_names() if n not in data]

    def initial_state(self) -> Dict[str, int]:
        return {l.name: l.init for l in self.latches}

    # -- extraction (the paper's reduction) -----------------------------#

    def extract_combinational(self) -> Circuit:
        """The combinational portion, as-is.

        Latch boundaries are already PIs/POs of the core, so extraction
        is the identity on the netlist; the value of this method is the
        *contract*: anything proven about the returned circuit (delay,
        testability) transfers to the sequential machine's cycle time
        and full-scan testability.
        """
        return self.core.copy(f"{self.name}_comb")

    def replace_core(self, core: Circuit) -> "SequentialCircuit":
        """Rebuild the machine around a transformed core (e.g. the KMS
        output).  The core must preserve the PI/PO name interface."""
        return SequentialCircuit(core, self.latches, self.name)

    def cycle_time(self, model=None) -> float:
        """The machine's cycle time: computed delay of the core
        (register-to-register, register-to-output, input-to-register and
        input-to-output paths all live in the core)."""
        from ..timing import viability_delay

        return viability_delay(self.core, model).delay

    # -- simulation -------------------------------------------------------#

    def simulate(
        self,
        input_sequence: List[Mapping[str, int]],
        state: Optional[Dict[str, int]] = None,
    ) -> Iterator[Tuple[Dict[str, int], Dict[str, int]]]:
        """Cycle-accurate simulation.

        Yields (primary outputs, next state) per applied input vector.
        """
        state = dict(state) if state is not None else self.initial_state()
        for vector in input_sequence:
            assignment: Dict[int, int] = {}
            for name in self.primary_inputs():
                assignment[self.core.find_input(name)] = vector[name]
            for latch in self.latches:
                assignment[
                    self.core.find_input(latch.state_input)
                ] = state[latch.name]
            values = self.core.evaluate(assignment)
            outputs = {
                name: values[self.core.find_output(name)]
                for name in self.primary_outputs()
            }
            state = {
                latch.name: values[
                    self.core.find_output(latch.data_output)
                ]
                for latch in self.latches
            }
            yield outputs, dict(state)

    def __repr__(self) -> str:
        return (
            f"<SequentialCircuit {self.name!r}: {len(self.latches)} "
            f"latches around {self.core.num_gates()} gates>"
        )


def kms_sequential(
    machine: SequentialCircuit,
    mode: str = "static",
    model=None,
    checked: bool = False,
):
    """The paper's sequential generalization: KMS on the extracted core.

    Returns (new machine, KmsResult).  The new machine has the same
    latch structure, a fully testable core (full-scan testability), and
    a cycle time no longer than the original's.
    """
    from ..core import kms

    core = machine.extract_combinational()
    result = kms(core, mode=mode, model=model, checked=checked)
    return machine.replace_core(result.circuit), result
