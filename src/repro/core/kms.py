"""The KMS algorithm: redundancy removal with no increase in delay.

This is the paper's Fig. 3, verbatim in structure:

    /* Circuit eta has only simple gates. */
    While (all longest paths in eta are not statically sensitizable/viable) {
        Choose a longest path P.
        Find n, the gate in P closest to the output that has fanout > 1.
        If n exists {
            Duplicate the gates of P up to n (with their fanin
            connections); move P's fanout edge e of n onto the duplicate
            n' so n' has a single fanout; call the duplicated path P'.
        } Else P' is the same as P.
        If P' is not statically sensitizable {
            Set first edge of P' to constant 0 or 1.
            Propagate constant as far as possible, removing useless gates.
        }
    }
    Remove remaining redundancies in any order.

Why it terminates: duplication creates a length-preserving bijection
between old and new paths (Theorem 7.1), and the constant-setting step
destroys the chosen longest path P' (plus possibly others) while creating
none, so the number of longest paths strictly decreases each iteration
until some longest path is sensitizable/viable or no path remains.

Why it is safe: the first edge of a single-fanout, non-statically-
sensitizable path is untestable for both stuck values, so tying it to a
constant preserves function; Theorems 7.1/7.2 show neither step increases
the viability-computed delay.  ``checked=True`` re-verifies both claims
after every iteration with the SAT miter and the timing engines.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..network import (
    Circuit,
    controlling_value,
    has_controlling_value,
)
from ..network.transform import (
    duplicate_chain,
    propagate_constants,
    set_connection_constant,
    sweep,
)
from ..sat import check_equivalence
from ..timing import (
    AsBuiltDelayModel,
    DelayModel,
    IncrementalTiming,
    Path,
    SensitizationChecker,
    ViabilityChecker,
    analyze,
    iter_paths_longest_first,
)

STATIC = "static"
VIABILITY = "viability"


@dataclass
class KmsEvent:
    """One iteration of the Fig. 3 while-loop, for tracing/reporting."""

    iteration: int
    path: str
    path_length: float
    duplicated_gates: int
    constant_value: Optional[int]
    gates_after: int
    #: deep copy of the circuit after the iteration (trace mode only).
    snapshot: Optional[Circuit] = None


@dataclass
class KmsResult:
    """Outcome of the KMS algorithm."""

    circuit: Circuit
    events: List[KmsEvent] = field(default_factory=list)
    #: redundancies removed by the final any-order cleanup phase.
    cleanup_steps: int = 0
    #: total gates duplicated across all iterations.
    duplicated_gates: int = 0
    #: deterministic work counters (arrival_relaxations,
    #: paths_enumerated, viability_checks_exact,
    #: viability_checks_prefiltered, cube_cache_hits, paths_capped,
    #: plus the cleanup phase's redundancy-proof counters listed in
    #: :data:`repro.atpg.proofengine.PROOF_COUNTERS`); the engine
    #: exports these through telemetry and the CI perf gates compare
    #: them against the committed baselines.
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        return len(self.events)


class KmsError(Exception):
    """Raised when a checked invariant fails (would indicate a bug)."""


def kms(
    circuit: Circuit,
    mode: str = STATIC,
    model: Optional[DelayModel] = None,
    checked: bool = False,
    trace: bool = False,
    max_longest_paths: int = 5000,
    max_iterations: int = 100000,
    choose_path: Optional[Callable[[List[Path]], Path]] = None,
    incremental: bool = True,
    prefilter=None,
    hier: Optional[bool] = None,
    hier_store=None,
) -> KmsResult:
    """Derive an equivalent irredundant circuit that is no slower.

    Args:
        circuit: a simple-gate network (run
            :func:`repro.network.decompose_complex_gates` first if needed).
            Not modified; the result holds a transformed copy.
        mode: ``"static"`` uses static sensitizability as the loop test
            (the paper's implementation choice -- cheaper, possibly extra
            duplication); ``"viability"`` uses viability (tightest).
        model: delay model (default: delays as built on the circuit).
        checked: verify functional equivalence and delay non-increase
            after every iteration (slow; for tests and paranoia).
        trace: keep a circuit snapshot in every event (for the Figs. 4-6
            walk-through).
        max_longest_paths: cap on longest-path enumeration per iteration;
            if the cap is hit without finding a sensitizable/viable one,
            the algorithm conservatively keeps iterating on unsensitizable
            paths it did see (safe: extra work, never wrong).  Hitting the
            cap raises a ``UserWarning`` and bumps the ``paths_capped``
            counter so capped runs are visible.
        choose_path: override which unsensitizable longest path to operate
            on (default: the enumeration's first).
        incremental: drive the loop with the dirty-cone incremental
            timing engine (:class:`repro.timing.IncrementalTiming`) --
            arrival times and path counts are re-relaxed only in the
            fanout of mutated gates, path checks go through the
            bit-parallel witness prefilter and the fingerprint-keyed cube
            cache.  ``False`` keeps the from-scratch recompute per
            iteration; both take bit-identical decisions, so the full
            mode is the A/B oracle for the incremental one.
        prefilter: optional sweep-level precomputed first-epoch grading
            (:class:`repro.engine.batchsim.BatchPrefilter`), threaded to
            the cleanup's proof engine.  Never changes results; only
            batches where the simulation work happened.
        hier: drive the incremental STA hierarchically
            (:class:`repro.timing.HierSTA`): partitions collapse into
            fingerprint-shared interface models, flat relaxation runs
            only over the partition graph, and mutations dirty whole
            partitions.  Annotations are bit-identical to the flat
            engine, so removal sequences and result netlists do not
            change.  ``None`` (default) follows ``REPRO_TIMING_HIER``
            (on unless ``=0`` -- the flat A/B oracle).  Ignored when
            ``incremental=False``.
        hier_store: optional :class:`repro.timing.ModelStore` the
            hierarchical engine should use instead of the process-wide
            default (tests/benchmarks wanting cold-cache behavior).

    Returns:
        :class:`KmsResult` whose circuit is fully single-stuck-at
        testable and, under the viability delay model, at least as fast
        as the input.
    """
    if mode not in (STATIC, VIABILITY):
        raise ValueError(f"unknown mode {mode!r}")
    if not circuit.is_simple_gate_network():
        raise ValueError(
            "KMS requires a simple-gate network; "
            "run decompose_complex_gates first"
        )
    model = model if model is not None else AsBuiltDelayModel()
    work = circuit.copy(f"{circuit.name}#kms")
    from ..atpg.proofengine import PROOF_COUNTERS
    from ..net import ARENA_COUNTERS, attach_arena, net_enabled
    from ..timing.hier import HIER_COUNTERS

    # The working copy is where all the mutation happens; attach the
    # struct-of-arrays arena so every transform maintains the flat
    # representation (simulation schedule, fingerprints, cones) in
    # place.  REPRO_NET_LEGACY=1 skips the attach and the whole run
    # falls back to the object-graph path -- the A/B oracle.
    arena = attach_arena(work) if net_enabled() else None

    result = KmsResult(circuit=work)
    counters = result.counters
    for name in (
        "arrival_relaxations",
        "dist_relaxations",
        "paths_enumerated",
        "viability_checks_exact",
        "viability_checks_prefiltered",
        "cube_cache_hits",
        "paths_capped",
    ) + HIER_COUNTERS + PROOF_COUNTERS + ARENA_COUNTERS:
        counters[name] = 0

    baseline_delay = None
    if checked:
        baseline_delay = _delay_pair(circuit, model)

    timing = (
        IncrementalTiming(
            work, model, mode=mode, hier=hier, hier_store=hier_store
        )
        if incremental
        else None
    )

    iteration = 0
    while True:
        if timing is not None:
            timing.begin_iteration()
            ann = timing.annotation()
        else:
            ann = analyze(work, model)
            # a full pass relaxes every gate once per direction
            counters["arrival_relaxations"] += len(work.gates)
            counters["dist_relaxations"] += len(work.gates)
        if ann.delay <= 0:
            break
        target = _find_unsensitizable_longest_path(
            work, model, mode, ann, max_longest_paths, choose_path,
            counters, timing,
        )
        if target is None:
            break  # some longest path is sensitizable/viable: loop exits
        if iteration >= max_iterations:
            raise KmsError(
                "KMS did not converge (max_iterations reached)"
            )
        event, touched = _eliminate_path(work, target, model, checked)
        event.iteration = iteration
        if timing is not None:
            timing.refresh(touched)
        if trace:
            event.snapshot = work.copy(f"{work.name}@{iteration}")
        result.events.append(event)
        result.duplicated_gates += event.duplicated_gates
        if checked:
            _check_invariants(circuit, work, model, baseline_delay)
        iteration += 1

    if timing is not None:
        for name, value in timing.counters().items():
            counters[name] += value

    # Duplicated chains whose siblings were later tied off are often
    # structurally identical again; fold them before the cleanup phase.
    # Strash merges only (type, delay, fanin)-identical gates, so path
    # lengths -- and hence delay -- are untouched.
    from ..synth.optimize import area_optimize

    area_optimize(work)

    # Fig. 3's final line: remove remaining redundancies in any order.
    # The same incremental switch drives the cleanup's proof engine
    # (persistent verdicts, shared epoch solver) vs the A/B oracle.
    from ..atpg.redundancy import remove_redundancies

    cleanup = remove_redundancies(
        work, incremental=incremental, prefilter=prefilter
    )
    for name, value in cleanup.counters.items():
        counters[name] = counters.get(name, 0) + value
    if arena is not None:
        for name, value in arena.counters.items():
            counters[name] = counters.get(name, 0) + value
        counters["arena_full_builds"] = (
            counters.get("arena_full_builds", 0) + arena.full_builds
        )
    result.circuit = cleanup.circuit
    result.circuit.name = f"{circuit.name}#kms"
    result.cleanup_steps = cleanup.removed
    if checked:
        _check_invariants(circuit, result.circuit, model, baseline_delay)
    return result


# ---------------------------------------------------------------------- #
# pieces
# ---------------------------------------------------------------------- #


def _find_unsensitizable_longest_path(
    work: Circuit,
    model: DelayModel,
    mode: str,
    annotation,
    max_longest_paths: int,
    choose_path: Optional[Callable[[List[Path]], Path]],
    counters: Dict[str, float],
    timing: Optional[IncrementalTiming] = None,
) -> Optional[Path]:
    """Return a longest path to operate on, or None when some longest
    path is sensitizable/viable (loop exit condition).

    With ``timing`` (incremental mode) path checks go through the
    prefilter/cache/exact funnel; without it, every check is an exact
    SAT query on a freshly built checker.  Both give the same booleans.
    """
    if timing is not None:
        test = timing.check_path
    else:
        checker = (
            ViabilityChecker(work, model, annotation=annotation)
            if mode == VIABILITY
            else SensitizationChecker(work)
        )
        exact = (
            checker.is_viable
            if mode == VIABILITY
            else checker.is_sensitizable
        )

        def test(path: Path) -> bool:
            counters["viability_checks_exact"] += 1
            return exact(path)

    candidates: List[Path] = []
    count = 0
    for path in iter_paths_longest_first(work, model, annotation):
        if path.length < annotation.delay - 1e-9:
            break
        count += 1
        if count > max_longest_paths:
            counters["paths_capped"] += 1
            warnings.warn(
                f"KMS longest-path enumeration capped at "
                f"{max_longest_paths} paths on {work.name!r}; the run "
                f"stays sound but may duplicate more than needed "
                f"(raise max_longest_paths to cover every longest path)",
                stacklevel=2,
            )
            break
        counters["paths_enumerated"] += 1
        if test(path):
            return None
        candidates.append(path)
    if not candidates:
        return None
    if choose_path is not None:
        return choose_path(candidates)
    return candidates[0]


def _eliminate_path(
    work: Circuit, path: Path, model: DelayModel, checked: bool
) -> Tuple[KmsEvent, Set[int]]:
    """One loop body: duplicate to single-fanout, then kill the first edge.

    Returns the event plus the union of the transforms' touched-gate
    sets, the incremental timing engine's refresh input.
    """
    description = path.describe(work)
    duplicated = 0
    target_path = path
    touched: Set[int] = set()
    n = path.last_multifanout_gate(work)
    if n is not None:
        j = path.gates.index(n)
        chain = list(path.gates[: j + 1])
        chain_conns = list(path.conns[: j + 1])
        e = path.conns[j + 1]
        mapping, dup_conns, dup_touched = duplicate_chain(
            work, chain, chain_conns
        )
        touched |= dup_touched
        # moving e re-sources its dst and shrinks n's fanout
        touched.update({n, mapping[n], work.conns[e].dst})
        work.move_connection_source(e, mapping[n])
        duplicated = len(mapping)
        target_path = Path(
            source=path.source,
            gates=tuple(mapping[g] for g in chain) + path.gates[j + 1 :],
            conns=tuple(dup_conns) + path.conns[j + 1 :],
            sink=path.sink,
            length=path.length,
        )
        if checked:
            # Theorem 7.1: duplication must not change the delay.
            from ..timing import topological_delay

            _ = topological_delay(work, model)
            # P' must be unsensitizable exactly like P (same side functions)
            if SensitizationChecker(work).is_sensitizable(target_path):
                raise KmsError(
                    "duplicated path became sensitizable -- "
                    "duplication bug"
                )
    # Set the first edge of P' to the controlling value of the gate it
    # feeds ("we prefer to set it to the controlling value ... since this
    # deletes this gate"); for NOT/BUF either value works.
    first_gate = work.gates[target_path.gates[0]] if target_path.gates else None
    if first_gate is not None and has_controlling_value(first_gate.gtype):
        value = controlling_value(first_gate.gtype)
    else:
        value = 0
    _, const_touched = set_connection_constant(
        work, target_path.first_edge, value
    )
    touched |= const_touched
    touched |= propagate_constants(work)[1]
    touched |= sweep(work, collapse_buffers=True)[1]
    event = KmsEvent(
        iteration=-1,
        path=description,
        path_length=path.length,
        duplicated_gates=duplicated,
        constant_value=value,
        gates_after=work.num_gates(),
    )
    return event, touched


def _delay_pair(circuit: Circuit, model: DelayModel):
    from ..timing import topological_delay, viability_delay

    return (
        topological_delay(circuit, model),
        viability_delay(circuit, model).delay,
    )


def _check_invariants(original, work, model, baseline) -> None:
    result = check_equivalence(original, work)
    if not result.equivalent:
        raise KmsError(
            f"function changed: output {result.differing_output!r} "
            f"differs under {result.counterexample!r}"
        )
    from ..timing import viability_delay

    via = viability_delay(work, model).delay
    if baseline is not None and via > baseline[1] + 1e-9:
        raise KmsError(
            f"viability delay increased: {baseline[1]} -> {via}"
        )
