"""End-to-end verification of a KMS (or any) circuit transformation.

Gathers, in one structured record, everything the paper claims about the
output circuit:

* functional equivalence to the input (SAT miter);
* full single-stuck-at testability (irredundancy);
* delay non-increase under the topological, viability, and
  longest-sensitizable-path delay measures.

The Table I bench and the checked KMS mode are both built on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..atpg import SatAtpg, collapsed_faults
from ..network import Circuit
from ..sat import check_equivalence
from ..timing import (
    AsBuiltDelayModel,
    DelayModel,
    sensitizable_delay,
    topological_delay,
    viability_delay,
)


@dataclass
class DelayTriple:
    """The three delay measures discussed in Sections II and V."""

    topological: float
    viability: float
    sensitizable: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "topological": self.topological,
            "viability": self.viability,
            "sensitizable": self.sensitizable,
        }


def measure_delays(
    circuit: Circuit, model: Optional[DelayModel] = None
) -> DelayTriple:
    """Compute all three delay measures for a circuit."""
    model = model if model is not None else AsBuiltDelayModel()
    return DelayTriple(
        topological=topological_delay(circuit, model),
        viability=viability_delay(circuit, model).delay,
        sensitizable=sensitizable_delay(circuit, model).delay,
    )


@dataclass
class VerificationReport:
    """Everything the paper promises, measured."""

    equivalent: bool
    irredundant: bool
    redundancies_before: int
    redundancies_after: int
    delays_before: DelayTriple
    delays_after: DelayTriple
    gates_before: int
    gates_after: int
    notes: List[str] = field(default_factory=list)

    @property
    def delay_preserved(self) -> bool:
        """The paper's guarantee: viability delay did not increase."""
        return self.delays_after.viability <= self.delays_before.viability + 1e-9

    @property
    def ok(self) -> bool:
        return self.equivalent and self.irredundant and self.delay_preserved


def verify_transformation(
    before: Circuit,
    after: Circuit,
    model: Optional[DelayModel] = None,
) -> VerificationReport:
    """Measure a before/after circuit pair against all paper claims."""
    model = model if model is not None else AsBuiltDelayModel()
    equivalence = check_equivalence(before, after)

    engine_before = SatAtpg(before)
    red_before = sum(
        1
        for f in collapsed_faults(before)
        if engine_before.is_redundant(f)
    )
    engine_after = SatAtpg(after)
    red_after = sum(
        1 for f in collapsed_faults(after) if engine_after.is_redundant(f)
    )

    report = VerificationReport(
        equivalent=equivalence.equivalent,
        irredundant=red_after == 0,
        redundancies_before=red_before,
        redundancies_after=red_after,
        delays_before=measure_delays(before, model),
        delays_after=measure_delays(after, model),
        gates_before=before.num_gates(),
        gates_after=after.num_gates(),
    )
    if not equivalence.equivalent:
        report.notes.append(
            f"differs on {equivalence.differing_output!r} under "
            f"{equivalence.counterexample!r}"
        )
    return report
