"""Theorems 7.1 and 7.2 as executable, checkable transformations.

The paper proves two lemmas about the KMS loop body:

* **Theorem 7.1** -- duplicating a gate ``n`` (same type, delay and
  fanin) and moving one fanout edge ``e`` onto the duplicate gives a
  circuit where every path corresponds to a unique equal-length path of
  the original, computing the same logic; hence
  ``delay(eta, c) = delay(eta', c)`` for every cube ``c``.

* **Theorem 7.2** -- if ``P`` is a longest path whose gates all have
  fanout 1 and ``P`` is not statically sensitizable, then tying ``P``'s
  first edge to a constant and propagating yields ``eta'`` with (1) the
  constant stops at a multi-input gate at a noncontrolling value, (2)
  every IO-path of ``eta'`` is an IO-path of ``eta``, and (3) every path
  viable in ``eta'`` under ``c`` is viable in ``eta`` under ``c`` --
  so ``delay(eta, c) >= delay(eta', c)``.

The functions below apply each transformation and return the structured
evidence the property-based tests check against the theorem statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..network import Circuit, CircuitError
from ..network.transform import (
    propagate_constants,
    set_connection_constant,
    sweep,
)
from ..timing import (
    AsBuiltDelayModel,
    DelayModel,
    Path,
    statically_sensitizable,
)


@dataclass
class DuplicationEvidence:
    """What Theorem 7.1 promises about a single-gate duplication."""

    circuit: Circuit
    original_gate: int
    duplicate_gate: int
    moved_edge: int


def duplicate_gate_for_edge(
    circuit: Circuit, gid: int, cid: int
) -> DuplicationEvidence:
    """Apply the Theorem 7.1 transformation to a copy of ``circuit``.

    ``gid`` must have fanout > 1 and ``cid`` must be one of its fanout
    connections.  The duplicate gets identical fanin connections (same
    sources, same delays) and takes over ``cid`` as its only fanout.
    """
    gate = circuit.gates[gid]
    if len(gate.fanout) <= 1:
        raise CircuitError("Theorem 7.1 requires fanout > 1")
    if cid not in gate.fanout:
        raise CircuitError(f"conn {cid} is not a fanout of gate {gid}")
    work = circuit.copy(f"{circuit.name}#dup")
    dup = work.add_gate(gate.gtype, gate.delay, None)
    for fanin_cid in work.gates[gid].fanin:
        conn = work.conns[fanin_cid]
        work.connect(conn.src, dup, conn.delay)
    work.move_connection_source(cid, dup)
    return DuplicationEvidence(
        circuit=work, original_gate=gid, duplicate_gate=dup, moved_edge=cid
    )


@dataclass
class ConstantSettingEvidence:
    """What Theorem 7.2 promises about killing an unsensitizable path."""

    circuit: Circuit
    path: Path
    constant_value: int
    #: why the precondition held (diagnostics for failed property tests).
    precondition_notes: List[str]


def set_path_constant(
    circuit: Circuit,
    path: Path,
    value: int,
    model: Optional[DelayModel] = None,
    require_preconditions: bool = True,
) -> ConstantSettingEvidence:
    """Apply the Theorem 7.2 transformation to a copy of ``circuit``.

    Preconditions (checked unless ``require_preconditions=False``):

    * every gate along ``path`` has fanout exactly 1;
    * ``path`` is a longest path (its length equals the circuit delay);
    * ``path`` is not statically sensitizable.
    """
    notes: List[str] = []
    if require_preconditions:
        for gid in path.gates:
            if circuit.fanout_size(gid) != 1:
                raise CircuitError(
                    f"Theorem 7.2 requires single fanout along P; "
                    f"gate {gid} has {circuit.fanout_size(gid)}"
                )
        notes.append("all path gates single-fanout")
        from ..timing import topological_delay

        model_ = model if model is not None else AsBuiltDelayModel()
        delay = topological_delay(circuit, model_)
        if path.length < delay - 1e-9:
            raise CircuitError(
                f"Theorem 7.2 requires a longest path "
                f"({path.length} < {delay})"
            )
        notes.append(f"path is longest (length {path.length:g})")
        if statically_sensitizable(circuit, path) is not None:
            raise CircuitError(
                "Theorem 7.2 requires P not statically sensitizable"
            )
        notes.append("path not statically sensitizable")
    work = circuit.copy(f"{circuit.name}#const")
    set_connection_constant(work, path.first_edge, value)
    propagate_constants(work)
    sweep(work, collapse_buffers=True)
    return ConstantSettingEvidence(
        circuit=work,
        path=path,
        constant_value=value,
        precondition_notes=notes,
    )
