"""The paper's primary contribution: the KMS algorithm and its proofs."""

from .kms import (
    KmsError,
    KmsEvent,
    KmsResult,
    STATIC,
    VIABILITY,
    kms,
)
from .theorems import (
    ConstantSettingEvidence,
    DuplicationEvidence,
    duplicate_gate_for_edge,
    set_path_constant,
)
from .verify import (
    DelayTriple,
    VerificationReport,
    measure_delays,
    verify_transformation,
)
from .report import TableRow, format_table

__all__ = [
    "ConstantSettingEvidence",
    "DelayTriple",
    "DuplicationEvidence",
    "KmsError",
    "KmsEvent",
    "KmsResult",
    "STATIC",
    "TableRow",
    "VIABILITY",
    "VerificationReport",
    "duplicate_gate_for_edge",
    "format_table",
    "kms",
    "measure_delays",
    "set_path_constant",
    "verify_transformation",
]
