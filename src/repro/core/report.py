"""Row formatting for Table-I-style reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass
class TableRow:
    """One row of a Table-I-style report."""

    name: str
    redundancies: int
    gates_initial: int
    gates_final: int
    delay_initial: float
    delay_final: float
    extra: Optional[str] = None


def format_table(
    rows: Sequence[TableRow],
    title: str = "Redundancy removal with no delay increase",
) -> str:
    """Render rows in the paper's Table I layout (plus delay columns).

    The paper's table reports name / #redundancies / initial gates /
    final gates; we add the measured delay before and after since the
    delay guarantee is the point of the algorithm.
    """
    header = (
        f"{'Name':<12} {'Red.':>5} {'Initial':>8} {'Final':>7} "
        f"{'Delay0':>7} {'Delay1':>7}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in rows:
        line = (
            f"{row.name:<12} {row.redundancies:>5d} "
            f"{row.gates_initial:>8d} {row.gates_final:>7d} "
            f"{row.delay_initial:>7g} {row.delay_final:>7g}"
        )
        if row.extra:
            line += f"  {row.extra}"
        lines.append(line)
    lines.append("-" * len(header))
    return "\n".join(lines)
