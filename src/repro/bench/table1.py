"""Table I regeneration: the paper's headline experiment.

Two workload families:

* carry-skip adders ``csa n.b`` (the paper runs 2.2, 4.4, 8.2, 8.4);
* the MCNC-like suite, area-synthesized then delay-optimized, exactly
  the flow of Section VIII ("optimized for delay using the timing
  optimization commands in MIS-II on circuits that had been initially
  optimized for area").

Each row records the redundancy count of the initial circuit, gate
counts before/after KMS, and -- beyond the paper's columns -- the
false-path-aware delay before/after, since "no delay increase" is the
algorithm's contract.  `classify_longest_paths` reports the paper's
class-1 / class-2 split for the optimized MCNC circuits.

Since the engine landed this module is a thin wrapper: every row is one
``repro.engine`` pipeline (*atpg -> sense_delay -> kms -> sense_delay*),
run in-process here.  Wall time comes from engine telemetry records, so
these serial numbers are directly comparable to the parallel/cached
numbers of ``python -m repro bench``, which runs the same pipelines
through :func:`repro.engine.run_table1`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuits import carry_skip_adder
from ..circuits.mcnc import MCNC_NAMES, mcnc_circuit
from ..core import TableRow, format_table
from ..engine import ResultCache, model_params, run_pipeline, table1_pipeline
from ..network import Circuit
from ..synth import speed_up
from ..timing import (
    DelayModel,
    UnitDelayModel,
    sensitizable_delay,
    topological_delay,
)

#: The paper's four carry-skip configurations (bits, block size).
CSA_SIZES: List[Tuple[int, int]] = [(2, 2), (4, 4), (8, 2), (8, 4)]

#: The paper's Table I reference values: name -> (red, initial, final).
PAPER_TABLE1: Dict[str, Tuple[int, int, int]] = {
    "csa 2.2": (2, 22, 21),
    "csa 4.4": (2, 40, 43),
    "csa 8.2": (8, 88, 88),
    "csa 8.4": (4, 80, 87),
    "5xp1": (1, 92, 91),
    "clip": (2, 99, 97),
    "duke2": (2, 317, 315),
    "f51m": (23, 164, 140),
    "misex1": (28, 79, 55),
    "misex2": (1, 88, 87),
    "rd73": (9, 91, 80),
    "sao2": (8, 122, 114),
    "z4ml": (7, 59, 53),
}


@dataclass
class Table1Row:
    """A measured Table I row plus delay evidence."""

    row: TableRow
    kms_iterations: int
    duplicated_gates: int
    seconds: float


def run_circuit_row(
    name: str,
    circuit: Circuit,
    model: Optional[DelayModel] = None,
    mode: str = "static",
    cache: Optional[ResultCache] = None,
) -> Table1Row:
    """Run the full KMS experiment on one circuit and collect the row.

    One engine pipeline, executed in-process.  Passing a ``cache`` makes
    every stage content-addressed-memoized; a delay model that has no
    declarative encoding (see :func:`repro.engine.model_params`) still
    works but that run is uncacheable.
    """
    model = model if model is not None else UnitDelayModel()
    encoded = model_params(model)
    pipeline = table1_pipeline(encoded, mode) if encoded is not None else None
    if pipeline is None:
        from ..engine import StageCall

        params = {"_model": model}
        pipeline = [
            StageCall("atpg", {}),
            StageCall("sense_delay", dict(params), label="delay_initial"),
            StageCall("kms", {**params, "mode": mode}),
            StageCall("sense_delay", dict(params), label="delay_final"),
        ]
    result = run_pipeline(circuit, pipeline, job_name=name, cache=cache)
    if not result.ok:
        raise RuntimeError(f"table1 row {name!r} failed: {result.error}")
    kms_payload = result.results["kms"]
    row = TableRow(
        name=name,
        redundancies=result.results["atpg"]["redundancies"],
        gates_initial=kms_payload["gates_initial"],
        gates_final=kms_payload["gates_final"],
        delay_initial=result.results["delay_initial"]["delay"],
        delay_final=result.results["delay_final"]["delay"],
    )
    return Table1Row(
        row=row,
        kms_iterations=kms_payload["iterations"],
        duplicated_gates=kms_payload["duplicated_gates"],
        seconds=sum(r.seconds for r in result.records),
    )


def carry_skip_rows(
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
    model: Optional[DelayModel] = None,
    mode: str = "static",
    cache: Optional[ResultCache] = None,
) -> List[Table1Row]:
    """The csa rows of Table I."""
    model = model if model is not None else UnitDelayModel(
        use_arrival_times=False
    )
    rows = []
    for nbits, block in sizes if sizes is not None else CSA_SIZES:
        circuit = carry_skip_adder(nbits, block)
        rows.append(
            run_circuit_row(
                f"csa {nbits}.{block}", circuit, model, mode, cache
            )
        )
    return rows


def optimized_mcnc(
    name: str,
    late_arrival: float = 6.0,
    model: Optional[DelayModel] = None,
) -> Circuit:
    """The Table I starting point for an MCNC name: area synthesis, then
    delay optimization under an input-arrival skew (first input late,
    standing in for the in-context timing constraints MIS-II optimized
    against -- this is what makes bypass-style restructuring, and hence
    the paper's redundancy phenomena, appear)."""
    model = model if model is not None else UnitDelayModel()
    circuit = mcnc_circuit(name)
    if late_arrival and circuit.inputs:
        circuit.set_input_arrival(circuit.inputs[0], late_arrival)
    fast, _stats = speed_up(circuit, model)
    return fast


def mcnc_rows(
    names: Optional[Sequence[str]] = None,
    late_arrival: float = 6.0,
    model: Optional[DelayModel] = None,
    mode: str = "static",
    cache: Optional[ResultCache] = None,
) -> List[Table1Row]:
    """The MCNC rows of Table I (on the stand-in suite)."""
    model = model if model is not None else UnitDelayModel()
    rows = []
    for name in names if names is not None else MCNC_NAMES:
        circuit = optimized_mcnc(name, late_arrival, model)
        rows.append(run_circuit_row(name, circuit, model, mode, cache))
    return rows


def classify_longest_paths(
    circuit: Circuit, model: Optional[DelayModel] = None
) -> str:
    """Section VIII's two classes: "class1" when the longest paths are
    not statically sensitizable (false), "class2" when sensitizable."""
    model = model if model is not None else UnitDelayModel()
    topo = topological_delay(circuit, model)
    sens = sensitizable_delay(circuit, model).delay
    return "class1" if sens < topo - 1e-9 else "class2"


def render(rows: Iterable[Table1Row], title: str) -> str:
    """Format rows with the paper's reference values alongside."""
    table_rows = []
    for item in rows:
        row = item.row
        ref = PAPER_TABLE1.get(row.name)
        if ref:
            row.extra = (
                f"paper: red {ref[0]}, {ref[1]} -> {ref[2]} gates"
            )
        table_rows.append(row)
    return format_table(table_rows, title)
