"""Benchmark harness: regenerates the paper's tables and figures."""

from .table1 import (
    CSA_SIZES,
    PAPER_TABLE1,
    Table1Row,
    carry_skip_rows,
    classify_longest_paths,
    mcnc_rows,
    optimized_mcnc,
    render,
    run_circuit_row,
)

__all__ = [
    "CSA_SIZES",
    "PAPER_TABLE1",
    "Table1Row",
    "carry_skip_rows",
    "classify_longest_paths",
    "mcnc_rows",
    "optimized_mcnc",
    "render",
    "run_circuit_row",
]
