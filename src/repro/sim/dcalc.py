"""Roth's 5-valued D-calculus for test generation.

A composite value is a pair (good, faulty), each in {0, 1, X}:

    ZERO = (0, 0)    ONE = (1, 1)    XX = (X, X)
    D    = (1, 0)    DBAR = (0, 1)

A stuck-at fault is *detected* at a primary output when the output carries
D or D' -- the good and faulty machines disagree.  PODEM
(:mod:`repro.atpg.podem`) simulates the composite circuit with these
values.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from ..network import Circuit, GateType
from .logic import X, eval_gate3

#: Composite values (good, faulty).
ZERO: Tuple = (0, 0)
ONE: Tuple = (1, 1)
XX: Tuple = (X, X)
D: Tuple = (1, 0)
DBAR: Tuple = (0, 1)


def composite(good, faulty) -> Tuple:
    """Build a composite value from good/faulty components."""
    return (good, faulty)


def is_known(value: Tuple) -> bool:
    """True if both components are binary."""
    return value[0] != X and value[1] != X

def is_d_or_dbar(value: Tuple) -> bool:
    """True if the value is D or D' (fault effect visible)."""
    return value in (D, DBAR)


def eval_gate5(gtype: GateType, inputs: Sequence[Tuple]) -> Tuple:
    """Evaluate a gate in the composite 5-valued algebra.

    Good and faulty components evaluate independently under 3-valued
    semantics -- the composite algebra is exactly the product algebra.
    """
    good = eval_gate3(gtype, [v[0] for v in inputs])
    faulty = eval_gate3(gtype, [v[1] for v in inputs])
    return (good, faulty)


def simulate5(
    circuit: Circuit,
    assignment: Mapping[int, Tuple],
    fault_conn: int = None,
    fault_gate: int = None,
    stuck_value: int = 0,
) -> Dict[int, Tuple]:
    """Composite simulation with an injected stuck-at fault.

    ``assignment`` maps PI gid -> composite value (unassigned PIs are XX).
    The fault site is either a connection (``fault_conn``: the fault
    applies only where that connection feeds its destination pin) or a
    gate output stem (``fault_gate``: all fanouts see the faulty value).

    Returns gate gid -> composite value.  Connection-level faulty values
    are applied on the fly while evaluating the destination gate.
    """
    values: Dict[int, Tuple] = {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            val = assignment.get(gid, XX)
        else:
            ins = []
            for cid in gate.fanin:
                v = values[circuit.conns[cid].src]
                if cid == fault_conn:
                    v = (v[0], stuck_value)
                ins.append(v)
            val = eval_gate5(gate.gtype, ins)
        if gid == fault_gate:
            val = (val[0], stuck_value)
        values[gid] = val
    return values
