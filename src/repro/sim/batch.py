"""Batched multi-circuit packed simulation.

PR 3-8 made each circuit's simulation fast in isolation: a compiled
levelized schedule, uint64 numpy lanes, event-driven fault cones, and a
struct-of-arrays arena so the schedule never rebuilds.  What was still
per-circuit is the *python dispatch*: every engine job of a sweep and
every scenario of a fuzz campaign walks its own schedule one gate at a
time, even though the circuits share opcode semantics and the work per
gate is one bitwise op.

:class:`BatchKernel` removes that axis.  It concatenates many compiled
views (:class:`~repro.sim.kernel.CompiledCircuit` or
:class:`~repro.sim.kernel.ArenaCompiledCircuit`, freely mixed) into one
ragged CSR super-graph over a single global value array and evaluates
*all* member circuits with one vectorized numpy dispatch per
``(level, opcode)`` group:

* Rows 0 and 1 of the global value array are padding sentinels (all
  zeros / all ones).  Ragged fanin rows inside a group are padded to the
  group's max arity with the reduction identity
  (:data:`~repro.sim.opcodes.PAD_IDENTITY_ONES` decides which), so one
  ``np.bitwise_*.reduce`` handles every arity at once.
* Members of different pattern widths batch together: bitwise ops are
  independent per bit lane, so evaluating at the batch max width with
  zero-padded inputs and masking each member's words at extraction is
  bit-identical to simulating each member alone at its own width.
* Negated opcodes (NAND/NOR/XNOR/NOT) dispatch as their base reduction
  (:data:`~repro.sim.opcodes.NEGATED`) followed by one vectorized
  complement.

A pure-python bigint fallback walks the identical group plan (one
:func:`~repro.sim.opcodes.eval_op_word` per gate), selected by the
existing ``REPRO_SIM_BACKEND`` switch -- with one deliberate divergence
from the per-circuit ``auto`` rule: batching amortizes numpy's per-op
overhead across *rows*, not lanes, so ``auto`` picks numpy whenever it
is importable regardless of width.

Work is tracked in plan-derived deterministic counters
(``batch_dispatches``, ``circuits_per_dispatch``, ``gate_evals_batched``,
``python_loop_iters_saved``) -- exact functions of the batch plan, the
same on both backends, flowing through
:class:`~repro.sim.kernel.SimWorkTracker` like every other sim counter.
The per-circuit kernels stay untouched as the A/B oracle: consumers gate
on :func:`batch_enabled` (``REPRO_SIM_BATCH=0`` forces the per-circuit
path) and the property suite asserts bit-identity between the two.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..network import Circuit
from .kernel import (
    _ALL_ONES,
    _GLOBAL_WORK,
    _SimWork,
    BACKEND_ENV,
    get_compiled,
    resolve_backend,
)
from .opcodes import (
    NEGATED,
    OP_AND,
    OP_CONST0,
    OP_CONST1,
    OP_INPUT,
    OP_OR,
    OP_XOR,
    PAD_IDENTITY_ONES,
    eval_op_word,
)

try:  # optional [perf] extra; the pure-python backend is always there
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None

#: Environment variable disabling batched dispatch (the A/B oracle
#: switch): ``REPRO_SIM_BATCH=0`` makes every consumer fall back to
#: per-circuit kernel calls, bit-identically.
BATCH_ENV = "REPRO_SIM_BATCH"


def batch_enabled() -> bool:
    """Should consumers batch compatible simulations across circuits?

    True unless ``REPRO_SIM_BATCH`` is set to ``0`` -- the env-level A/B
    switch mirroring ``REPRO_SIM_LEGACY`` / ``REPRO_NET_LEGACY``.
    """
    return os.environ.get(BATCH_ENV, "") != "0"


def _resolve_batch_backend(requested: Optional[str]) -> str:
    """Backend choice for one batched dispatch.

    Explicit requests (argument or ``REPRO_SIM_BACKEND``) behave exactly
    like :func:`repro.sim.kernel.resolve_backend`; ``auto`` prefers
    numpy whenever importable because the batch amortizes per-op
    overhead across rows, not pattern lanes.
    """
    choice = requested or os.environ.get(BACKEND_ENV, "auto") or "auto"
    if choice == "auto":
        return "numpy" if _np is not None else "python"
    return resolve_backend(choice)


def _member_schedule(kern) -> Tuple[int, List[Tuple[int, int, Tuple[int, ...], int, int]]]:
    """Lower one compiled view to ``(n_rows, rows)``.

    ``rows`` lists ``(position, opcode, fanin positions, level, gid)``
    in a valid evaluation order.  For the legacy kernel positions are
    topo ranks and the level array is precomputed; for the arena view
    positions are slots and levels are derived here by one walk of the
    maintained schedule (fanins always precede their gate in it).
    """
    arena = getattr(kern, "arena", None)
    if arena is None:
        ops = kern.ops
        fanin = kern.fanin_pos
        level = kern.level
        order = kern.order
        return len(ops), [
            (i, ops[i], fanin[i], level[i], order[i])
            for i in range(len(ops))
        ]
    n = len(arena.alive)
    evalop = arena.evalop
    fanin = arena.fanin
    csrc = arena.csrc
    gid_of = arena.gid_of
    level = [0] * n
    rows: List[Tuple[int, int, Tuple[int, ...], int, int]] = []
    for slot in arena.sched_order:
        if slot == -1:
            continue
        srcs = tuple(csrc[c] for c in fanin[slot])
        lvl = 1 + max((level[s] for s in srcs), default=-1)
        level[slot] = lvl
        rows.append((slot, evalop[slot], srcs, lvl, gid_of[slot]))
    return n, rows


class BatchKernel:
    """Many compiled circuits fused into one ragged dispatch plan.

    Construction compiles (or reuses) each member's kernel view and
    builds the global plan: per-member row offsets into one value
    array, input/const row lists, and ``(level, opcode)`` groups of
    ``(dst row, padded src rows)``.  The plan rebuilds automatically
    when any member circuit has mutated since (one integer compare per
    member per call, the same staleness contract as the per-circuit
    kernel).

    :meth:`evaluate_words` is the batched equivalent of calling every
    member's ``evaluate_words`` in a loop -- same positional word lists
    per member, bit-identical on both backends -- in one dispatch per
    group instead of one python loop iteration per gate.
    """

    def __init__(self, circuits: Sequence[Circuit]) -> None:
        self.circuits: List[Circuit] = list(circuits)
        self.work = _SimWork()
        self._build()

    # ------------------------------ plan ------------------------------ #

    def _build(self) -> None:
        kernels = [get_compiled(c) for c in self.circuits]
        self.kernels = kernels
        self._versions = [c.version for c in self.circuits]
        bases: List[int] = []
        member_rows: List[int] = []
        #: (global row, member index, gid) for every primary input
        input_rows: List[Tuple[int, int, int]] = []
        #: (global row, opcode) for every constant gate
        const_rows: List[Tuple[int, int]] = []
        grouped: Dict[Tuple[int, int], List[Tuple[int, Tuple[int, ...]]]] = {}
        n_eval = 0
        total = 2  # rows 0 / 1 are the zeros / all-ones padding sentinels
        for k, kern in enumerate(kernels):
            kern._ensure_fresh()
            n, rows = _member_schedule(kern)
            bases.append(total)
            member_rows.append(n)
            base = total
            for pos, op, srcs, lvl, gid in rows:
                g = base + pos
                if op == OP_INPUT:
                    input_rows.append((g, k, gid))
                    continue
                n_eval += 1
                if op == OP_CONST0 or op == OP_CONST1:
                    const_rows.append((g, op))
                    continue
                grouped.setdefault((lvl, op), []).append(
                    (g, tuple(base + s for s in srcs))
                )
            total += n
        self.bases = bases
        self.member_rows = member_rows
        self.total_rows = total
        self.input_rows = input_rows
        self.const_rows = const_rows
        #: dispatch plan: (level, opcode, [(dst row, src rows)...]),
        #: level-ascending so every fanin row is written before read
        self.groups: List[Tuple[int, int, List[Tuple[int, Tuple[int, ...]]]]]
        self.groups = [
            (lvl, op, rows) for (lvl, op), rows in sorted(grouped.items())
        ]
        #: rows one full batched evaluation charges (what the members'
        #: per-circuit ``gate_evals_good`` would have summed to)
        self.n_eval_rows = n_eval
        self.n_groups = len(self.groups)
        self._np_plan = None

    def _ensure_fresh(self) -> None:
        if any(
            c.version != v for c, v in zip(self.circuits, self._versions)
        ):
            self._build()

    def _np_groups(self):
        """The group plan lowered to numpy index arrays (cached)."""
        if self._np_plan is None:
            np = _np
            plan = []
            for _lvl, op, rows in self.groups:
                arity = max((len(s) for _, s in rows), default=0) or 1
                pad = 1 if op in PAD_IDENTITY_ONES else 0
                src = np.full((len(rows), arity), pad, dtype=np.intp)
                dst = np.empty(len(rows), dtype=np.intp)
                for i, (d, srcs) in enumerate(rows):
                    dst[i] = d
                    if srcs:
                        src[i, : len(srcs)] = srcs
                plan.append((op, dst, src))
            self._np_plan = plan
        return self._np_plan

    # ---------------------------- evaluation --------------------------- #

    def evaluate_words(
        self,
        packed_inputs: Sequence[Mapping[int, int]],
        widths: Sequence[int],
        backend: Optional[str] = None,
    ) -> List[List[int]]:
        """Batched, bit-identical equivalent of per-member
        ``evaluate_words`` calls.

        ``packed_inputs[k]`` maps member ``k``'s PI gids to packed
        words, ``widths[k]`` its pattern count.  Returns one positional
        word list per member (index = topo rank / arena slot), each
        masked to its member's own width.
        """
        if len(packed_inputs) != len(self.circuits) or len(widths) != len(
            self.circuits
        ):
            raise ValueError(
                "batch evaluate needs one packed-input map and one width "
                "per member circuit"
            )
        if not self.circuits:
            return []
        self._ensure_fresh()
        width = max(widths)
        if width <= 0:
            # zero-width mask annihilates every word on both backends
            self._charge()
            return [[0] * n for n in self.member_rows]
        which = _resolve_batch_backend(backend)
        if which == "numpy":
            values = self._dispatch_numpy(packed_inputs, width)
        else:
            values = self._dispatch_python(packed_inputs, width)
        self._charge()
        out: List[List[int]] = []
        for k, base in enumerate(self.bases):
            mask = (1 << widths[k]) - 1
            out.append(
                [values[base + i] & mask for i in range(self.member_rows[k])]
            )
        return out

    def evaluate(
        self,
        packed_inputs: Sequence[Mapping[int, int]],
        widths: Sequence[int],
        backend: Optional[str] = None,
    ) -> List[Dict[int, int]]:
        """Like :meth:`evaluate_words` but gid-keyed per member (the
        shape ``simulate_packed`` returns)."""
        words = self.evaluate_words(packed_inputs, widths, backend)
        out: List[Dict[int, int]] = []
        for k, kern in enumerate(self.kernels):
            member = words[k]
            out.append(
                {
                    gid: member[i]
                    for i, gid in enumerate(kern.order)
                    if gid != -1
                }
            )
        return out

    # ----------------------------- backends ---------------------------- #

    def _dispatch_python(
        self, packed_inputs: Sequence[Mapping[int, int]], width: int
    ) -> List[int]:
        mask = (1 << width) - 1
        values = [0] * self.total_rows
        values[1] = mask
        for g, k, gid in self.input_rows:
            values[g] = packed_inputs[k].get(gid, 0) & mask
        for g, op in self.const_rows:
            values[g] = mask if op == OP_CONST1 else 0
        for _lvl, op, rows in self.groups:
            for dst, srcs in rows:
                values[dst] = eval_op_word(
                    op, [values[s] for s in srcs], mask
                )
        return values

    def _dispatch_numpy(
        self, packed_inputs: Sequence[Mapping[int, int]], width: int
    ) -> List[int]:
        np = _np
        nwords = (width + 63) // 64
        mask = (1 << width) - 1
        lane_mask = np.full(nwords, _ALL_ONES, dtype=np.uint64)
        rem = width % 64
        if rem:
            lane_mask[-1] = np.uint64((1 << rem) - 1)
        row_bytes = nwords * 8
        values = np.zeros((self.total_rows, nwords), dtype=np.uint64)
        values[1] = lane_mask
        for g, k, gid in self.input_rows:
            v = packed_inputs[k].get(gid, 0) & mask
            values[g] = np.frombuffer(
                v.to_bytes(row_bytes, "little"), dtype="<u8"
            )
        for g, op in self.const_rows:
            if op == OP_CONST1:
                values[g] = lane_mask
        for op, dst, src in self._np_groups():
            base = NEGATED.get(op, op)
            gathered = values[src]  # (rows, arity, nwords)
            if base == OP_AND:
                acc = np.bitwise_and.reduce(gathered, axis=1)
            elif base == OP_OR:
                acc = np.bitwise_or.reduce(gathered, axis=1)
            elif base == OP_XOR:
                acc = np.bitwise_xor.reduce(gathered, axis=1)
            else:  # OP_BUF base: NOT and BUF are the single first column
                acc = gathered[:, 0, :]
            if op in NEGATED:
                acc = ~acc & lane_mask
            values[dst] = acc
        lanes = values.astype("<u8", copy=False).tobytes()
        return [
            int.from_bytes(lanes[i * row_bytes: (i + 1) * row_bytes], "little")
            for i in range(self.total_rows)
        ]

    # ----------------------------- counters ---------------------------- #

    def _charge(self) -> None:
        """Plan-derived work accounting for one batched dispatch --
        identical on both backends by construction."""
        saved = max(0, self.n_eval_rows - self.n_groups)
        for w in (self.work, _GLOBAL_WORK):
            w.batch_dispatches += 1
            w.circuits_per_dispatch += len(self.circuits)
            w.gate_evals_batched += self.n_eval_rows
            w.python_loop_iters_saved += saved

    def counters(self) -> Dict[str, int]:
        """This batch kernel's deterministic work-counter snapshot."""
        return self.work.as_dict()

    def __len__(self) -> int:
        return len(self.circuits)

    def __repr__(self) -> str:
        return (
            f"<BatchKernel {len(self.circuits)} circuits, "
            f"{self.total_rows} rows, {self.n_groups} groups>"
        )
