"""Scalar logic simulation: 2-valued and 3-valued (0/1/X).

The 3-valued simulator implements the paper's cube-application semantics
(Section IV): "applying the cube x y' z to C is shorthand for applying
u = X, w = X, x = 1, y = 0, z = 1 ... the value X denotes an unknown
value".  Static sensitization and viability checks, as well as PODEM's
implication engine, are built on these semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from ..network import Circuit, GateType

#: The unknown value in 3-valued simulation.
X = "X"

Value3 = object  # 0 | 1 | X


def v3_not(a):
    """3-valued NOT."""
    if a == X:
        return X
    return 1 - a


def v3_and(values: Iterable) -> object:
    """3-valued AND: any 0 dominates; else X if any X; else 1."""
    saw_x = False
    for v in values:
        if v == 0:
            return 0
        if v == X:
            saw_x = True
    return X if saw_x else 1


def v3_or(values: Iterable) -> object:
    """3-valued OR: any 1 dominates; else X if any X; else 0."""
    saw_x = False
    for v in values:
        if v == 1:
            return 1
        if v == X:
            saw_x = True
    return X if saw_x else 0


def v3_xor(values: Iterable) -> object:
    """3-valued XOR: X if any input is X, else parity."""
    acc = 0
    for v in values:
        if v == X:
            return X
        acc ^= v
    return acc


def eval_gate3(gtype: GateType, inputs: Sequence) -> object:
    """3-valued evaluation of a single gate."""
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype in (GateType.BUF, GateType.OUTPUT):
        return inputs[0]
    if gtype is GateType.NOT:
        return v3_not(inputs[0])
    if gtype is GateType.AND:
        return v3_and(inputs)
    if gtype is GateType.NAND:
        return v3_not(v3_and(inputs))
    if gtype is GateType.OR:
        return v3_or(inputs)
    if gtype is GateType.NOR:
        return v3_not(v3_or(inputs))
    if gtype is GateType.XOR:
        return v3_xor(inputs)
    if gtype is GateType.XNOR:
        return v3_not(v3_xor(inputs))
    raise ValueError(f"cannot evaluate {gtype}")


def simulate3(
    circuit: Circuit, assignment: Mapping[int, object]
) -> Dict[int, object]:
    """3-valued simulation.

    ``assignment`` maps PI gid -> 0/1/X; unassigned PIs default to X
    (cube semantics).  Returns values for every gate.
    """
    values: Dict[int, object] = {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gate.gtype is GateType.INPUT:
            values[gid] = assignment.get(gid, X)
        else:
            ins = [values[circuit.conns[c].src] for c in gate.fanin]
            values[gid] = eval_gate3(gate.gtype, ins)
    return values


def simulate_cube_by_name(
    circuit: Circuit, cube: Mapping[str, object]
) -> Dict[int, object]:
    """3-valued simulation with the cube given by PI names."""
    assignment = {
        circuit.find_input(name): val for name, val in cube.items()
    }
    return simulate3(circuit, assignment)


def truth_table(
    circuit: Circuit, max_inputs: int = 20
) -> Dict[Tuple[int, ...], Tuple[int, ...]]:
    """Exhaustive truth table: PI-vector tuple -> PO-vector tuple.

    Guarded by ``max_inputs`` -- exhaustive enumeration is a test oracle
    for small circuits only.
    """
    pis = circuit.inputs
    if len(pis) > max_inputs:
        raise ValueError(
            f"truth_table limited to {max_inputs} inputs; "
            f"circuit has {len(pis)}"
        )
    table: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
    for bits in range(1 << len(pis)):
        vec = tuple((bits >> i) & 1 for i in range(len(pis)))
        assignment = dict(zip(pis, vec))
        table[vec] = circuit.evaluate_outputs(assignment)
    return table


def outputs_equal_exhaustive(a: Circuit, b: Circuit) -> bool:
    """Exhaustive functional equivalence for small circuits.

    Circuits must share PI and PO *names* (order may differ).  This is the
    slow, obviously-correct oracle used to validate SAT/BDD equivalence.
    """
    a_pis = {a.gates[g].name: g for g in a.inputs}
    b_pis = {b.gates[g].name: g for g in b.inputs}
    if set(a_pis) != set(b_pis):
        return False
    a_pos = {a.gates[g].name: g for g in a.outputs}
    b_pos = {b.gates[g].name: g for g in b.outputs}
    if set(a_pos) != set(b_pos):
        return False
    names = sorted(a_pis)
    for bits in range(1 << len(names)):
        assign_a = {}
        assign_b = {}
        for i, n in enumerate(names):
            bit = (bits >> i) & 1
            assign_a[a_pis[n]] = bit
            assign_b[b_pis[n]] = bit
        va = a.evaluate(assign_a)
        vb = b.evaluate(assign_b)
        for name in a_pos:
            if va[a_pos[name]] != vb[b_pos[name]]:
                return False
    return True
