"""Compiled levelized simulation kernel.

:func:`repro.sim.parallel.simulate_packed` re-derives the topological
order and does per-gate dict lookups on every call, and
:func:`repro.atpg.faultsim.simulate_fault_packed` re-simulates the whole
circuit once per fault.  This module compiles a :class:`Circuit` once
into a flat levelized schedule and makes both costs go away:

* :class:`CompiledCircuit` lowers the network into parallel lists --
  topological order, integer opcodes, fanin source *positions* -- built
  once and reused across calls.  Staleness is detected with one integer
  compare against :attr:`Circuit.version` (every structural mutation
  bumps it), and consumers holding touched-gate sets from
  :mod:`repro.network.transform` can call :meth:`CompiledCircuit.refresh`
  explicitly (the PR-3 contract: a non-empty touched set means the
  schedule may have changed, so the kernel recompiles).

* two interchangeable, bit-identical backends: pure Python (arbitrary-
  precision ints, one bitwise op per gate per call) and an optional
  numpy backend that splits a pattern block into ``uint64`` lanes so a
  4096-pattern word is 64 machine words instead of one 4096-bit Python
  int.  Selection is automatic (numpy when importable and the block is
  wider than one machine word) and forceable through the
  ``REPRO_SIM_BACKEND`` environment variable (``python`` / ``numpy`` /
  ``auto``).

* event-driven parallel-pattern fault simulation
  (:meth:`CompiledCircuit.fault_diffs`): the stuck value is injected at
  the fault site and propagated only through the fanout cone, cutting
  off as soon as the good/faulty difference word goes to zero.  The
  faulty-value map is sparse -- gates outside the cone are never
  evaluated -- which is where the >=5x gate-evaluation saving of
  ``BENCH_sim.json`` comes from.

All work is tracked in deterministic counters (``gate_evals_good``,
``gate_evals_faulty``, ``cone_cutoffs``, ``faults_dropped``) -- exact
functions of circuit + pattern block, no wall-clock jitter -- kept both
per kernel and process-globally so :class:`SimWorkTracker` can attribute
them per engine stage exactly like the SAT solve-call counter.

The legacy interpreted path stays available everywhere as the A/B
oracle: set ``REPRO_SIM_LEGACY=1`` (or pass ``compiled=False`` where a
consumer exposes it) and every consumer falls back to
``simulate_packed`` / ``simulate_fault_packed``.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..network import Circuit
from .opcodes import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_INPUT,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    OPCODE,
    eval_op_word,
)

try:  # optional [perf] extra; the pure-Python backend is always there
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None

#: Environment variable selecting the evaluation backend.
BACKEND_ENV = "REPRO_SIM_BACKEND"
#: Environment variable forcing the legacy interpreted path (A/B oracle).
LEGACY_ENV = "REPRO_SIM_LEGACY"

#: ``auto`` stays on Python ints up to one machine word; wider blocks
#: amortize numpy's per-op overhead across many uint64 lanes.
AUTO_NUMPY_MIN_WIDTH = 65

#: The kernel's deterministic work counters, in canonical order.  The
#: ``batch_*`` / ``*_batched`` / ``*_saved`` entries are bumped only by
#: :class:`repro.sim.batch.BatchKernel` (the multi-circuit kernel) and
#: stay zero on purely per-circuit runs.
WORK_COUNTERS = (
    "gate_evals_good",
    "gate_evals_faulty",
    "cone_cutoffs",
    "faults_dropped",
    "compile_rebuilds",
    "batch_dispatches",
    "circuits_per_dispatch",
    "gate_evals_batched",
    "python_loop_iters_saved",
)

_ALL_ONES = 0xFFFF_FFFF_FFFF_FFFF

# the shared opcode table (see repro.sim.opcodes); the leading
# underscore names predate the shared module and are kept for the
# consumers/tests that import them from here
_OP_INPUT = OP_INPUT
_OP_CONST0 = OP_CONST0
_OP_CONST1 = OP_CONST1
_OP_BUF = OP_BUF
_OP_NOT = OP_NOT
_OP_AND = OP_AND
_OP_NAND = OP_NAND
_OP_OR = OP_OR
_OP_NOR = OP_NOR
_OP_XOR = OP_XOR
_OP_XNOR = OP_XNOR

_OPCODE = OPCODE


# ---------------------------------------------------------------------- #
# backend selection and legacy switch
# ---------------------------------------------------------------------- #

def numpy_available() -> bool:
    """True when the optional numpy backend can be used."""
    return _np is not None


def available_backends() -> List[str]:
    """The backends usable in this process, preferred-last."""
    return ["python"] + (["numpy"] if _np is not None else [])


def resolve_backend(
    requested: Optional[str] = None, width: Optional[int] = None
) -> str:
    """Pick the evaluation backend for one call.

    ``requested`` overrides everything; otherwise ``REPRO_SIM_BACKEND``
    decides, defaulting to ``auto``: numpy when importable and the
    pattern block is wider than one machine word, else pure Python.
    Forcing ``numpy`` without numpy installed is an error (CI's
    fallback leg forces ``python`` instead of silently downgrading).
    """
    choice = requested or os.environ.get(BACKEND_ENV, "auto") or "auto"
    if choice == "python":
        return "python"
    if choice == "numpy":
        if _np is None:
            raise RuntimeError(
                "REPRO_SIM_BACKEND=numpy but numpy is not installed "
                "(pip install repro[perf])"
            )
        return "numpy"
    if choice != "auto":
        raise ValueError(
            f"unknown simulation backend {choice!r}; "
            f"expected python, numpy, or auto"
        )
    if _np is not None and (width or 0) >= AUTO_NUMPY_MIN_WIDTH:
        return "numpy"
    return "python"


def kernel_enabled() -> bool:
    """Should consumers route through the compiled kernel?

    True unless ``REPRO_SIM_LEGACY`` is set to a non-empty, non-zero
    value -- the env-level A/B switch mirroring ``kms(...,
    incremental=False)``.
    """
    return os.environ.get(LEGACY_ENV, "") in ("", "0")


# ---------------------------------------------------------------------- #
# work counters
# ---------------------------------------------------------------------- #

class _SimWork:
    """Mutable counter block shared by a kernel and the process global."""

    __slots__ = WORK_COUNTERS

    def __init__(self) -> None:
        for name in WORK_COUNTERS:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in WORK_COUNTERS}


#: process-global counters (per worker process, like sat solve_calls)
_GLOBAL_WORK = _SimWork()


def sim_work_counters() -> Dict[str, int]:
    """Snapshot of the process-global kernel work counters."""
    return _GLOBAL_WORK.as_dict()


class SimWorkTracker:
    """Snapshot/delta view of the global sim work counters.

    The engine opens one per stage attempt so telemetry records report
    the stage's own gate evaluations -- the same pattern as
    :class:`repro.sat.SolveCallTracker`.  Usable as a context manager.
    """

    def __init__(self) -> None:
        self._mark = sim_work_counters()

    def reset(self) -> None:
        """Restart the delta window at the current counter values."""
        self._mark = sim_work_counters()

    @property
    def counters(self) -> Dict[str, int]:
        """Counter deltas in this process since construction/reset."""
        now = sim_work_counters()
        return {
            name: max(0, now[name] - self._mark[name])
            for name in WORK_COUNTERS
        }

    def __enter__(self) -> "SimWorkTracker":
        self.reset()
        return self

    def __exit__(self, *exc_info) -> None:
        pass


# ---------------------------------------------------------------------- #
# the compiled circuit
# ---------------------------------------------------------------------- #

class CompiledCircuit:
    """A :class:`Circuit` lowered to a flat levelized schedule.

    Parallel lists indexed by *position* (rank in topological order):
    ``ops[i]`` is the integer opcode, ``fanin_pos[i]`` the positions of
    the gate's fanin sources in pin order, ``fanout_pos[i]`` the sorted
    positions it feeds, ``level[i]`` the levelization depth.  ``order``
    maps position -> gid and ``pos`` the inverse; ``conn_pin`` maps each
    connection id to its ``(dst position, pin index)`` so connection
    faults inject without touching the ``Circuit`` object.

    The kernel records :attr:`Circuit.version` at compile time and
    recompiles lazily whenever the circuit has mutated since; callers
    holding touched-gate sets may also call :meth:`refresh` explicitly.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.work = _SimWork()
        self._compile()

    # ------------------------------ build ----------------------------- #

    def _compile(self) -> None:
        circuit = self.circuit
        self.version = circuit.version
        self.work.compile_rebuilds += 1
        _GLOBAL_WORK.compile_rebuilds += 1
        order = circuit.topological_order()
        self.order: List[int] = order
        pos = {gid: i for i, gid in enumerate(order)}
        self.pos: Dict[int, int] = pos
        n = len(order)
        ops: List[int] = [0] * n
        fanin_pos: List[Tuple[int, ...]] = [()] * n
        fanout_pos: List[Tuple[int, ...]] = [()] * n
        level: List[int] = [0] * n
        conn_pin: Dict[int, Tuple[int, int]] = {}
        conns = circuit.conns
        for i, gid in enumerate(order):
            gate = circuit.gates[gid]
            ops[i] = _OPCODE[gate.gtype]
            srcs = tuple(pos[conns[cid].src] for cid in gate.fanin)
            fanin_pos[i] = srcs
            for pin, cid in enumerate(gate.fanin):
                conn_pin[cid] = (i, pin)
            fanout_pos[i] = tuple(
                sorted({pos[conns[cid].dst] for cid in gate.fanout})
            )
            level[i] = 1 + max((level[s] for s in srcs), default=-1)
        self.ops = ops
        self.fanin_pos = fanin_pos
        self.fanout_pos = fanout_pos
        self.level = level
        self.conn_pin = conn_pin
        self.num_levels = 1 + max(level, default=0)
        self.pi_pos = [pos[g] for g in circuit.inputs]
        self.po_pos = [pos[g] for g in circuit.outputs]
        self._po_pos_set = set(self.po_pos)
        #: positions the good-eval counter charges (everything but PIs)
        self._num_eval_gates = sum(1 for op in ops if op != _OP_INPUT)

    @property
    def stale(self) -> bool:
        """Has the circuit mutated since this schedule was built?"""
        return self.version != self.circuit.version

    def refresh(self, touched: Optional[Iterable[int]] = None) -> bool:
        """Invalidate per the touched-gate-set contract.

        A non-empty ``touched`` set (or any structural mutation since
        compile) recompiles the schedule; an empty set on an unchanged
        circuit is a no-op.  Returns True when a recompile happened.
        """
        if self.stale or (touched is not None and any(True for _ in touched)):
            self._compile()
            return True
        return False

    def _ensure_fresh(self) -> None:
        if self.stale:
            self._compile()

    # ----------------------------- queries ---------------------------- #

    def num_eval_gates(self) -> int:
        """Gates one full-circuit evaluation costs (non-PI positions) --
        the per-fault price of the legacy full resimulation."""
        self._ensure_fresh()
        return self._num_eval_gates

    def counters(self) -> Dict[str, int]:
        """This kernel's deterministic work-counter snapshot."""
        return self.work.as_dict()

    def words_from_values(self, values: Mapping[int, int]) -> List[int]:
        """Positional word list from a gid-keyed value map (the shape
        ``simulate_packed`` returns), for interop with legacy callers."""
        self._ensure_fresh()
        return [values[gid] for gid in self.order]

    # --------------------------- good evaluation ----------------------- #

    def evaluate(
        self,
        packed_inputs: Mapping[int, int],
        width: int,
        overrides: Optional[Mapping[int, int]] = None,
        backend: Optional[str] = None,
    ) -> Dict[int, int]:
        """Drop-in, bit-identical replacement for ``simulate_packed``.

        Returns packed words for every gate, keyed by gid.  ``overrides``
        forces gate outputs exactly like the interpreted path.
        """
        words = self.evaluate_words(packed_inputs, width, overrides, backend)
        return {gid: words[i] for i, gid in enumerate(self.order)}

    def evaluate_words(
        self,
        packed_inputs: Mapping[int, int],
        width: int,
        overrides: Optional[Mapping[int, int]] = None,
        backend: Optional[str] = None,
    ) -> List[int]:
        """Like :meth:`evaluate` but positional (index = topo rank) --
        the representation the fault simulator consumes."""
        self._ensure_fresh()
        mask = (1 << width) - 1
        over: Dict[int, int] = {}
        if overrides:
            over = {self.pos[g]: v & mask for g, v in overrides.items()}
        which = resolve_backend(backend, width)
        if which == "numpy":
            values, evals = self._evaluate_numpy(
                packed_inputs, width, mask, over
            )
        else:
            values, evals = self._evaluate_python(packed_inputs, mask, over)
        self.work.gate_evals_good += evals
        _GLOBAL_WORK.gate_evals_good += evals
        return values

    def _evaluate_python(
        self,
        packed_inputs: Mapping[int, int],
        mask: int,
        over: Dict[int, int],
    ) -> Tuple[List[int], int]:
        ops = self.ops
        fanin_pos = self.fanin_pos
        order = self.order
        values = [0] * len(ops)
        evals = 0
        for idx, op in enumerate(ops):
            if idx in over:
                values[idx] = over[idx]
                continue
            if op == _OP_INPUT:
                values[idx] = packed_inputs.get(order[idx], 0) & mask
                continue
            evals += 1
            srcs = fanin_pos[idx]
            if op == _OP_AND or op == _OP_NAND:
                acc = mask
                for s in srcs:
                    acc &= values[s]
                values[idx] = acc if op == _OP_AND else ~acc & mask
            elif op == _OP_OR or op == _OP_NOR:
                acc = 0
                for s in srcs:
                    acc |= values[s]
                values[idx] = acc if op == _OP_OR else ~acc & mask
            elif op == _OP_BUF:
                values[idx] = values[srcs[0]]
            elif op == _OP_NOT:
                values[idx] = ~values[srcs[0]] & mask
            elif op == _OP_XOR or op == _OP_XNOR:
                acc = 0
                for s in srcs:
                    acc ^= values[s]
                values[idx] = acc if op == _OP_XOR else ~acc & mask
            elif op == _OP_CONST0:
                values[idx] = 0
            else:  # _OP_CONST1
                values[idx] = mask
        return values, evals

    def _evaluate_numpy(
        self,
        packed_inputs: Mapping[int, int],
        width: int,
        mask: int,
        over: Dict[int, int],
    ) -> Tuple[List[int], int]:
        np = _np
        nwords = (width + 63) // 64
        lane_mask = np.full(nwords, _ALL_ONES, dtype=np.uint64)
        rem = width % 64
        if rem:
            lane_mask[-1] = np.uint64((1 << rem) - 1)

        def to_lanes(value: int):
            return np.frombuffer(
                (value & mask).to_bytes(nwords * 8, "little"), dtype="<u8"
            ).astype(np.uint64, copy=True)

        ops = self.ops
        fanin_pos = self.fanin_pos
        order = self.order
        n = len(ops)
        values = np.zeros((n, nwords), dtype=np.uint64)
        evals = 0
        for idx, op in enumerate(ops):
            if idx in over:
                values[idx] = to_lanes(over[idx])
                continue
            if op == _OP_INPUT:
                values[idx] = to_lanes(packed_inputs.get(order[idx], 0))
                continue
            evals += 1
            srcs = fanin_pos[idx]
            if op == _OP_AND or op == _OP_NAND:
                acc = lane_mask.copy()
                for s in srcs:
                    acc &= values[s]
                values[idx] = acc if op == _OP_AND else ~acc & lane_mask
            elif op == _OP_OR or op == _OP_NOR:
                acc = np.zeros(nwords, dtype=np.uint64)
                for s in srcs:
                    acc |= values[s]
                values[idx] = acc if op == _OP_OR else ~acc & lane_mask
            elif op == _OP_BUF:
                values[idx] = values[srcs[0]]
            elif op == _OP_NOT:
                values[idx] = ~values[srcs[0]] & lane_mask
            elif op == _OP_XOR or op == _OP_XNOR:
                acc = np.zeros(nwords, dtype=np.uint64)
                for s in srcs:
                    acc ^= values[s]
                values[idx] = acc if op == _OP_XOR else ~acc & lane_mask
            elif op == _OP_CONST0:
                pass  # already zeros
            else:  # _OP_CONST1
                values[idx] = lane_mask
        lanes = values.astype("<u8", copy=False).tobytes()
        row = nwords * 8
        out = [
            int.from_bytes(lanes[i * row:(i + 1) * row], "little")
            for i in range(n)
        ]
        return out, evals

    def _eval_one(self, idx: int, ins: Sequence[int], mask: int) -> int:
        """Evaluate one gate over explicit fanin words (fault path) --
        straight through the shared opcode table."""
        return eval_op_word(self.ops[idx], ins, mask)

    # ------------------------ event-driven faults ---------------------- #

    def fault_diffs(
        self, fault, good_words: Sequence[int], width: int
    ) -> Dict[int, int]:
        """Event-driven faulty simulation: sparse position -> faulty word.

        Injects the stuck value at the fault site and propagates only
        through the fanout cone in topological order, cutting a branch
        off the moment its good/faulty difference word goes to zero.
        Only differing gates appear in the result; everything else holds
        its good value.  ``fault`` is an :class:`repro.atpg.Fault`
        (``kind`` ``"conn"`` or ``"stem"``) -- duck-typed to avoid a
        sim -> atpg import cycle.
        """
        self._ensure_fresh()
        mask = (1 << width) - 1
        stuck = mask if fault.value else 0
        work = self.work
        if fault.kind == "conn":
            seed, pin = self.conn_pin[fault.site]
            ins = [good_words[s] for s in self.fanin_pos[seed]]
            ins[pin] = stuck
            word = self._eval_one(seed, ins, mask)
            work.gate_evals_faulty += 1
            _GLOBAL_WORK.gate_evals_faulty += 1
        else:
            seed = self.pos[fault.site]
            word = stuck
        if word == good_words[seed]:
            work.cone_cutoffs += 1
            _GLOBAL_WORK.cone_cutoffs += 1
            return {}
        diffs: Dict[int, int] = {seed: word}
        heap = list(self.fanout_pos[seed])
        heapq.heapify(heap)
        queued = set(heap)
        fanin_pos = self.fanin_pos
        fanout_pos = self.fanout_pos
        evals = 0
        cutoffs = 0
        while heap:
            p = heapq.heappop(heap)
            queued.discard(p)
            ins = [diffs.get(s, good_words[s]) for s in fanin_pos[p]]
            word = self._eval_one(p, ins, mask)
            evals += 1
            if word == good_words[p]:
                cutoffs += 1
                continue
            diffs[p] = word
            for q in fanout_pos[p]:
                if q not in queued:
                    queued.add(q)
                    heapq.heappush(heap, q)
        work.gate_evals_faulty += evals
        work.cone_cutoffs += cutoffs
        _GLOBAL_WORK.gate_evals_faulty += evals
        _GLOBAL_WORK.cone_cutoffs += cutoffs
        return diffs

    def detecting_word(
        self, fault, good_words: Sequence[int], width: int
    ) -> int:
        """Bitmask of patterns under which ``fault`` is visible at any
        primary output (bit i = pattern i) -- the event-driven
        equivalent of ``atpg.faultsim.detecting_patterns``."""
        diffs = self.fault_diffs(fault, good_words, width)
        if not diffs:
            return 0
        word = 0
        for p in self._po_pos_set.intersection(diffs):
            word |= diffs[p] ^ good_words[p]
        return word

    def simulate_fault(
        self,
        fault,
        packed_inputs: Mapping[int, int],
        width: int,
        good_words: Optional[Sequence[int]] = None,
        backend: Optional[str] = None,
    ) -> Dict[int, int]:
        """Full faulty-value map, bit-identical to
        ``simulate_fault_packed``: the good values overlaid with the
        fault's cone diffs.  Pass precomputed ``good_words`` to reuse
        one good simulation across a whole fault list."""
        if good_words is None:
            good_words = self.evaluate_words(
                packed_inputs, width, backend=backend
            )
        diffs = self.fault_diffs(fault, good_words, width)
        return {
            gid: diffs.get(i, good_words[i])
            for i, gid in enumerate(self.order)
        }

    def note_dropped(self, count: int) -> None:
        """Record ``count`` faults dropped from an active list after
        detection (the fault simulator's drop-on-detect accounting)."""
        if count > 0:
            self.work.faults_dropped += count
            _GLOBAL_WORK.faults_dropped += count

    def __repr__(self) -> str:
        return (
            f"<CompiledCircuit {self.circuit.name!r}: "
            f"{len(self.order)} positions, {self.num_levels} levels, "
            f"v{self.version}{' STALE' if self.stale else ''}>"
        )


# ---------------------------------------------------------------------- #
# the zero-copy arena view
# ---------------------------------------------------------------------- #

class ArenaCompiledCircuit:
    """Zero-copy simulation view of a :class:`repro.net.arena.NetArena`.

    Duck-type compatible with :class:`CompiledCircuit` for every
    consumer (fault simulation, diagnosis, compaction, the timing
    prefilter), but there is no compiled artifact to rebuild: *positions
    are arena slots*.  Opcodes, fanin connections, and the maintained
    topological order are read live from the arena's parallel arrays at
    evaluation time, so circuit mutations never invalidate this view --
    the arena's hooks already updated the arrays in place.

    ``refresh``/staleness points where the legacy kernel would have
    recompiled its schedule from the object graph instead bump the
    arena's ``compile_rebuilds_avoided`` counter (tracked against
    :attr:`Circuit.version`, exactly the legacy staleness condition, so
    the avoided count is comparable to the legacy run's
    ``compile_rebuilds``).

    Bit-identity with the legacy kernel: values are keyed by gid and
    per-gate, and both views evaluate every gate after all its fanins
    (any valid topological order), so every returned word, every
    detecting mask, and every work counter except the rebuilds pair is
    identical.
    """

    def __init__(self, circuit: Circuit, arena) -> None:
        self.circuit = circuit
        self.arena = arena
        self.work = _SimWork()
        #: object-graph version at last staleness check -- the legacy
        #: kernel's recompile trigger, reused for avoided accounting.
        self.version = circuit.version

    # ------------------------- staleness protocol ---------------------- #

    @property
    def stale(self) -> bool:
        """A live view is never stale (the hooks keep it fresh)."""
        return False

    def _note_avoided(self) -> None:
        self.arena.counters["compile_rebuilds_avoided"] += 1
        self.version = self.circuit.version

    def _ensure_fresh(self) -> None:
        if self.version != self.circuit.version:
            self._note_avoided()

    def refresh(self, touched: Optional[Iterable[int]] = None) -> bool:
        """Touched-gate-set invalidation contract: where the legacy
        kernel recompiles, the live view only records the rebuild it
        did not need.  Returns True when a rebuild was avoided."""
        if self.version != self.circuit.version or (
            touched is not None and any(True for _ in touched)
        ):
            self._note_avoided()
            return True
        return False

    # ----------------------------- queries ---------------------------- #

    @property
    def pos(self) -> Dict[int, int]:
        """gid -> position; a position is the arena slot (live map)."""
        return self.arena.slot_of

    @property
    def order(self) -> List[int]:
        """position -> gid, ``-1`` at dead slots (live array)."""
        return self.arena.gid_of

    def num_eval_gates(self) -> int:
        """Gates one full-circuit evaluation costs (non-PI gates)."""
        return self.arena.n_eval_gates

    def counters(self) -> Dict[str, int]:
        """This view's deterministic work-counter snapshot."""
        return self.work.as_dict()

    def words_from_values(self, values: Mapping[int, int]) -> List[int]:
        """Slot-positional word list from a gid-keyed value map."""
        arena = self.arena
        words = [0] * len(arena.alive)
        for slot in arena.live_slots():
            words[slot] = values[arena.gid_of[slot]]
        return words

    # --------------------------- good evaluation ----------------------- #

    def evaluate(
        self,
        packed_inputs: Mapping[int, int],
        width: int,
        overrides: Optional[Mapping[int, int]] = None,
        backend: Optional[str] = None,
    ) -> Dict[int, int]:
        """Drop-in, bit-identical replacement for ``simulate_packed``."""
        words = self.evaluate_words(packed_inputs, width, overrides, backend)
        arena = self.arena
        return {
            arena.gid_of[slot]: words[slot] for slot in arena.live_slots()
        }

    def evaluate_words(
        self,
        packed_inputs: Mapping[int, int],
        width: int,
        overrides: Optional[Mapping[int, int]] = None,
        backend: Optional[str] = None,
    ) -> List[int]:
        """Like :meth:`evaluate` but positional (index = arena slot)."""
        self._ensure_fresh()
        mask = (1 << width) - 1
        over: Dict[int, int] = {}
        if overrides:
            slot_of = self.arena.slot_of
            over = {slot_of[g]: v & mask for g, v in overrides.items()}
        which = resolve_backend(backend, width)
        if which == "numpy":
            values, evals = self._evaluate_numpy(
                packed_inputs, width, mask, over
            )
        else:
            values, evals = self._evaluate_python(packed_inputs, mask, over)
        self.work.gate_evals_good += evals
        _GLOBAL_WORK.gate_evals_good += evals
        return values

    def _evaluate_python(
        self,
        packed_inputs: Mapping[int, int],
        mask: int,
        over: Dict[int, int],
    ) -> Tuple[List[int], int]:
        arena = self.arena
        evalop = arena.evalop
        fanin = arena.fanin
        csrc = arena.csrc
        gid_of = arena.gid_of
        values = [0] * len(arena.alive)
        evals = 0
        for slot in arena.sched_order:
            if slot == -1:
                continue
            if slot in over:
                values[slot] = over[slot]
                continue
            op = evalop[slot]
            if op == _OP_INPUT:
                values[slot] = packed_inputs.get(gid_of[slot], 0) & mask
                continue
            evals += 1
            srcs = [csrc[c] for c in fanin[slot]]
            if op == _OP_AND or op == _OP_NAND:
                acc = mask
                for s in srcs:
                    acc &= values[s]
                values[slot] = acc if op == _OP_AND else ~acc & mask
            elif op == _OP_OR or op == _OP_NOR:
                acc = 0
                for s in srcs:
                    acc |= values[s]
                values[slot] = acc if op == _OP_OR else ~acc & mask
            elif op == _OP_BUF:
                values[slot] = values[srcs[0]]
            elif op == _OP_NOT:
                values[slot] = ~values[srcs[0]] & mask
            elif op == _OP_XOR or op == _OP_XNOR:
                acc = 0
                for s in srcs:
                    acc ^= values[s]
                values[slot] = acc if op == _OP_XOR else ~acc & mask
            elif op == _OP_CONST0:
                values[slot] = 0
            else:  # _OP_CONST1
                values[slot] = mask
        return values, evals

    def _evaluate_numpy(
        self,
        packed_inputs: Mapping[int, int],
        width: int,
        mask: int,
        over: Dict[int, int],
    ) -> Tuple[List[int], int]:
        np = _np
        nwords = (width + 63) // 64
        lane_mask = np.full(nwords, _ALL_ONES, dtype=np.uint64)
        rem = width % 64
        if rem:
            lane_mask[-1] = np.uint64((1 << rem) - 1)

        def to_lanes(value: int):
            return np.frombuffer(
                (value & mask).to_bytes(nwords * 8, "little"), dtype="<u8"
            ).astype(np.uint64, copy=True)

        arena = self.arena
        evalop = arena.evalop
        fanin = arena.fanin
        csrc = arena.csrc
        gid_of = arena.gid_of
        n = len(arena.alive)
        values = np.zeros((n, nwords), dtype=np.uint64)
        evals = 0
        for slot in arena.sched_order:
            if slot == -1:
                continue
            if slot in over:
                values[slot] = to_lanes(over[slot])
                continue
            op = evalop[slot]
            if op == _OP_INPUT:
                values[slot] = to_lanes(packed_inputs.get(gid_of[slot], 0))
                continue
            evals += 1
            srcs = [csrc[c] for c in fanin[slot]]
            if op == _OP_AND or op == _OP_NAND:
                acc = lane_mask.copy()
                for s in srcs:
                    acc &= values[s]
                values[slot] = acc if op == _OP_AND else ~acc & lane_mask
            elif op == _OP_OR or op == _OP_NOR:
                acc = np.zeros(nwords, dtype=np.uint64)
                for s in srcs:
                    acc |= values[s]
                values[slot] = acc if op == _OP_OR else ~acc & lane_mask
            elif op == _OP_BUF:
                values[slot] = values[srcs[0]]
            elif op == _OP_NOT:
                values[slot] = ~values[srcs[0]] & lane_mask
            elif op == _OP_XOR or op == _OP_XNOR:
                acc = np.zeros(nwords, dtype=np.uint64)
                for s in srcs:
                    acc ^= values[s]
                values[slot] = acc if op == _OP_XOR else ~acc & lane_mask
            elif op == _OP_CONST0:
                pass  # already zeros
            else:  # _OP_CONST1
                values[slot] = lane_mask
        lanes = values.astype("<u8", copy=False).tobytes()
        row = nwords * 8
        out = [
            int.from_bytes(lanes[i * row:(i + 1) * row], "little")
            for i in range(n)
        ]
        return out, evals

    def _eval_one(self, slot: int, ins: Sequence[int], mask: int) -> int:
        """Evaluate one gate over explicit fanin words (fault path) --
        straight through the shared opcode table."""
        return eval_op_word(self.arena.evalop[slot], ins, mask)

    # ------------------------ event-driven faults ---------------------- #

    def fault_diffs(
        self, fault, good_words: Sequence[int], width: int
    ) -> Dict[int, int]:
        """Event-driven faulty simulation: sparse slot -> faulty word.

        Same algorithm as :meth:`CompiledCircuit.fault_diffs`, but the
        propagation frontier is ordered by the arena's maintained
        ``rank`` (slots are not themselves topological)."""
        self._ensure_fresh()
        arena = self.arena
        mask = (1 << width) - 1
        stuck = mask if fault.value else 0
        work = self.work
        if fault.kind == "conn":
            c = arena.cslot_of[fault.site]
            seed = arena.cdst[c]
            pin = arena.cpin[c]
            ins = [good_words[arena.csrc[cc]] for cc in arena.fanin[seed]]
            ins[pin] = stuck
            word = self._eval_one(seed, ins, mask)
            work.gate_evals_faulty += 1
            _GLOBAL_WORK.gate_evals_faulty += 1
        else:
            seed = arena.slot_of[fault.site]
            word = stuck
        if word == good_words[seed]:
            work.cone_cutoffs += 1
            _GLOBAL_WORK.cone_cutoffs += 1
            return {}
        diffs: Dict[int, int] = {seed: word}
        rank = arena.rank
        cdst = arena.cdst
        fanin = arena.fanin
        fanout = arena.fanout
        csrc = arena.csrc
        heap: List[Tuple[int, int]] = []
        queued = set()
        for c in fanout[seed]:
            dst = cdst[c]
            if dst not in queued:
                queued.add(dst)
                heapq.heappush(heap, (rank[dst], dst))
        evals = 0
        cutoffs = 0
        while heap:
            _, p = heapq.heappop(heap)
            queued.discard(p)
            ins = [
                diffs.get(s, good_words[s])
                for s in (csrc[c] for c in fanin[p])
            ]
            word = self._eval_one(p, ins, mask)
            evals += 1
            if word == good_words[p]:
                cutoffs += 1
                continue
            diffs[p] = word
            for c in fanout[p]:
                q = cdst[c]
                if q not in queued:
                    queued.add(q)
                    heapq.heappush(heap, (rank[q], q))
        work.gate_evals_faulty += evals
        work.cone_cutoffs += cutoffs
        _GLOBAL_WORK.gate_evals_faulty += evals
        _GLOBAL_WORK.cone_cutoffs += cutoffs
        return diffs

    def detecting_word(
        self, fault, good_words: Sequence[int], width: int
    ) -> int:
        """Bitmask of patterns under which ``fault`` is visible at any
        primary output (bit i = pattern i)."""
        diffs = self.fault_diffs(fault, good_words, width)
        if not diffs:
            return 0
        word = 0
        for p in set(self.arena.po_slots).intersection(diffs):
            word |= diffs[p] ^ good_words[p]
        return word

    def simulate_fault(
        self,
        fault,
        packed_inputs: Mapping[int, int],
        width: int,
        good_words: Optional[Sequence[int]] = None,
        backend: Optional[str] = None,
    ) -> Dict[int, int]:
        """Full faulty-value map keyed by gid, bit-identical to
        ``simulate_fault_packed``."""
        if good_words is None:
            good_words = self.evaluate_words(
                packed_inputs, width, backend=backend
            )
        diffs = self.fault_diffs(fault, good_words, width)
        arena = self.arena
        return {
            arena.gid_of[slot]: diffs.get(slot, good_words[slot])
            for slot in arena.live_slots()
        }

    def note_dropped(self, count: int) -> None:
        """Record faults dropped from an active list after detection."""
        if count > 0:
            self.work.faults_dropped += count
            _GLOBAL_WORK.faults_dropped += count

    def __repr__(self) -> str:
        return (
            f"<ArenaCompiledCircuit {self.circuit.name!r}: "
            f"{len(self.arena.alive)} slots "
            f"({self.arena.n_live_gates} live), arena-backed>"
        )


def get_compiled(circuit: Circuit):
    """The circuit's cached compiled kernel, recompiled when stale.

    The kernel is attached to the circuit object itself (copies start
    clean; ``Circuit.copy`` does not carry it over), so every consumer
    of the same mutating circuit shares one schedule and one counter
    block.

    A circuit with an attached :class:`repro.net.arena.NetArena` gets
    the zero-copy :class:`ArenaCompiledCircuit` view instead of a
    rebuilt schedule (detach the arena -- or never attach one, e.g.
    under ``REPRO_NET_LEGACY=1`` -- and this falls back to the legacy
    :class:`CompiledCircuit` path verbatim).
    """
    kern = getattr(circuit, "_compiled_kernel", None)
    arena = getattr(circuit, "_arena", None)
    if arena is not None:
        if (
            isinstance(kern, ArenaCompiledCircuit)
            and kern.circuit is circuit
            and kern.arena is arena
        ):
            kern._ensure_fresh()
        else:
            kern = ArenaCompiledCircuit(circuit, arena)
            circuit._compiled_kernel = kern
        return kern
    if (
        kern is None
        or kern.circuit is not circuit
        or isinstance(kern, ArenaCompiledCircuit)
    ):
        kern = CompiledCircuit(circuit)
        circuit._compiled_kernel = kern
    elif kern.stale:
        kern._compile()
    return kern


def refresh_compiled(
    circuit: Circuit, touched: Optional[Iterable[int]] = None
) -> None:
    """Apply the touched-gate-set invalidation contract to the
    circuit's attached kernel, if any (no-op otherwise)."""
    kern = getattr(circuit, "_compiled_kernel", None)
    if kern is not None and kern.circuit is circuit:
        kern.refresh(touched)


# ---------------------------------------------------------------------- #
# compiled AIG simulation (the fraig refinement path)
# ---------------------------------------------------------------------- #

class CompiledAig:
    """Flat bit-parallel simulation schedule for an :class:`Aig`.

    AIG node ids are already topological, so "compiling" means freezing
    the live AND nodes and their (node, phase-mask) fanins into parallel
    lists once, instead of re-walking ``fanins()`` tuples per call --
    the cost :func:`repro.aig.fraig.fraig` pays once per counterexample
    refinement.  AIGs are append-only; the schedule covers the node
    range at compile time and refuses to simulate a grown graph
    (rebuild for that -- fraig never grows the graph it refines).
    """

    def __init__(self, aig) -> None:
        self.aig = aig
        self.num_nodes = aig.num_nodes()
        ands: List[int] = []
        fanin_node0: List[int] = []
        fanin_node1: List[int] = []
        fanin_neg0: List[int] = []
        fanin_neg1: List[int] = []
        for node in aig.and_nodes():
            f0, f1 = aig.fanins(node)
            ands.append(node)
            fanin_node0.append(f0 >> 1)
            fanin_node1.append(f1 >> 1)
            fanin_neg0.append(f0 & 1)
            fanin_neg1.append(f1 & 1)
        self.ands = ands
        self.fanin_node0 = fanin_node0
        self.fanin_node1 = fanin_node1
        self.fanin_neg0 = fanin_neg0
        self.fanin_neg1 = fanin_neg1
        self.inputs = list(aig.inputs)

    def simulate(
        self,
        packed_inputs: Mapping[int, int],
        width: int,
        backend: Optional[str] = None,
    ) -> List[int]:
        """Bit-identical to :meth:`Aig.simulate` over the compiled range."""
        if self.aig.num_nodes() != self.num_nodes:
            raise RuntimeError(
                "CompiledAig is stale: the AIG grew since compile"
            )
        mask = (1 << width) - 1
        which = resolve_backend(backend, width)
        if which == "numpy":
            return self._simulate_numpy(packed_inputs, width, mask)
        values = [0] * self.num_nodes
        for node in self.inputs:
            values[node] = packed_inputs.get(node, 0) & mask
        neg_words = (0, mask)
        for i, node in enumerate(self.ands):
            v0 = values[self.fanin_node0[i]] ^ neg_words[self.fanin_neg0[i]]
            v1 = values[self.fanin_node1[i]] ^ neg_words[self.fanin_neg1[i]]
            values[node] = v0 & v1
        self.work_add(len(self.ands))
        return values

    def _simulate_numpy(
        self, packed_inputs: Mapping[int, int], width: int, mask: int
    ) -> List[int]:
        np = _np
        nwords = (width + 63) // 64
        lane_mask = np.full(nwords, _ALL_ONES, dtype=np.uint64)
        rem = width % 64
        if rem:
            lane_mask[-1] = np.uint64((1 << rem) - 1)
        values = np.zeros((self.num_nodes, nwords), dtype=np.uint64)
        for node in self.inputs:
            values[node] = np.frombuffer(
                (packed_inputs.get(node, 0) & mask).to_bytes(
                    nwords * 8, "little"
                ),
                dtype="<u8",
            ).astype(np.uint64, copy=True)
        zeros = np.zeros(nwords, dtype=np.uint64)
        neg_words = (zeros, lane_mask)
        for i, node in enumerate(self.ands):
            v0 = values[self.fanin_node0[i]] ^ neg_words[self.fanin_neg0[i]]
            v1 = values[self.fanin_node1[i]] ^ neg_words[self.fanin_neg1[i]]
            values[node] = v0 & v1
        self.work_add(len(self.ands))
        lanes = values.astype("<u8", copy=False).tobytes()
        row = nwords * 8
        return [
            int.from_bytes(lanes[i * row:(i + 1) * row], "little")
            for i in range(self.num_nodes)
        ]

    def work_add(self, evals: int) -> None:
        _GLOBAL_WORK.gate_evals_good += evals
