"""Simulation substrate: 2/3/5-valued, bit-parallel, and event-driven."""

from .logic import (
    X,
    eval_gate3,
    outputs_equal_exhaustive,
    simulate3,
    simulate_cube_by_name,
    truth_table,
    v3_and,
    v3_not,
    v3_or,
    v3_xor,
)
from .parallel import (
    eval_gate_bits,
    pack_vectors,
    random_equivalence_check,
    random_packed_inputs,
    simulate_packed,
)
from .dcalc import D, DBAR, ONE, XX, ZERO, eval_gate5, is_d_or_dbar, simulate5
from .events import (
    output_waveforms,
    sample_waveform,
    settle_time,
    true_delay,
)

__all__ = [
    "D",
    "DBAR",
    "ONE",
    "XX",
    "X",
    "ZERO",
    "eval_gate3",
    "eval_gate5",
    "eval_gate_bits",
    "is_d_or_dbar",
    "output_waveforms",
    "outputs_equal_exhaustive",
    "pack_vectors",
    "sample_waveform",
    "random_equivalence_check",
    "random_packed_inputs",
    "settle_time",
    "simulate3",
    "simulate5",
    "simulate_cube_by_name",
    "simulate_packed",
    "truth_table",
    "v3_and",
    "v3_not",
    "v3_or",
    "v3_xor",
    "true_delay",
]
