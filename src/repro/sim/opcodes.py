"""The one opcode table every packed-simulation path consumes.

Three evaluators used to carry their own copy of the gate semantics:
:func:`repro.sim.parallel.eval_gate_bits` (the interpreted oracle),
:class:`repro.sim.kernel.CompiledCircuit` (the per-circuit compiled
kernel), and -- since PR 9 -- :class:`repro.sim.batch.BatchKernel` (the
multi-circuit batched kernel).  A truth-table divergence between them
would silently break every A/B claim in the benchmarks, so the integer
opcodes, the :class:`~repro.network.GateType` mapping, and the
word-level evaluation function live here exactly once and everything
else imports them.

Opcode values are part of the compiled kernels' on-the-wire shape (the
arena stores them in its ``evalop`` array), so they are append-only.
"""

from __future__ import annotations

from typing import Sequence

from ..network import GateType

# integer opcodes; OUTPUT markers evaluate as BUF, exactly as
# sim.parallel.eval_gate_bits treats them
OP_INPUT = 0
OP_CONST0 = 1
OP_CONST1 = 2
OP_BUF = 3
OP_NOT = 4
OP_AND = 5
OP_NAND = 6
OP_OR = 7
OP_NOR = 8
OP_XOR = 9
OP_XNOR = 10

#: GateType -> integer opcode (OUTPUT evaluates as BUF).
OPCODE = {
    GateType.INPUT: OP_INPUT,
    GateType.CONST0: OP_CONST0,
    GateType.CONST1: OP_CONST1,
    GateType.BUF: OP_BUF,
    GateType.OUTPUT: OP_BUF,
    GateType.NOT: OP_NOT,
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
}

#: Opcodes whose output is the complement of the base reduction -- the
#: batch kernel dispatches the base op vectorized, then negates once.
NEGATED = {OP_NAND: OP_AND, OP_NOR: OP_OR, OP_XNOR: OP_XOR, OP_NOT: OP_BUF}

#: Per-opcode padding word for ragged fanin rows: the identity element
#: of the reduction, so padding a short row never changes the result
#: (all-ones for AND-family, zero for OR/XOR-family).
PAD_IDENTITY_ONES = frozenset((OP_AND, OP_NAND))


def eval_op_word(op: int, inputs: Sequence[int], mask: int) -> int:
    """Evaluate one gate opcode over packed pattern words.

    ``mask`` is the ``(1 << width) - 1`` pattern mask; every negating
    opcode reduces back into it so Python's infinite-precision ``~``
    cannot leak sign bits.  Raises on :data:`OP_INPUT` (primary inputs
    have no evaluation rule; callers read them from the stimulus).
    """
    if op == OP_AND or op == OP_NAND:
        acc = mask
        for v in inputs:
            acc &= v
        return acc if op == OP_AND else ~acc & mask
    if op == OP_OR or op == OP_NOR:
        acc = 0
        for v in inputs:
            acc |= v
        return acc if op == OP_OR else ~acc & mask
    if op == OP_BUF:
        return inputs[0]
    if op == OP_NOT:
        return ~inputs[0] & mask
    if op == OP_XOR or op == OP_XNOR:
        acc = 0
        for v in inputs:
            acc ^= v
        return acc if op == OP_XOR else ~acc & mask
    if op == OP_CONST0:
        return 0
    if op == OP_CONST1:
        return mask
    raise ValueError(f"cannot evaluate opcode {op}")
