"""Event-driven timing simulation: the *true delay* oracle.

Section V of the paper defines the true delay of a circuit as the maximum,
over all input events, of the time between the input event and the last
output change.  Computing it exactly requires simulating all input
transitions -- "considered to be a formidable problem for most circuits" --
which is precisely why the paper uses viability as a computed upper bound.

For *small* circuits we can afford the formidable: this module simulates
every ordered pair of input vectors under a transport-delay model and
reports the exact settling time.  Tests use it to confirm that topological
delay >= viability delay >= longest-statically-sensitizable-path delay and
that viability delay >= true delay (upper-bound soundness, Theorem 7.2's
frame).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..network import Circuit, GateType
from ..network.gates import evaluate as eval_gate


def settle_time(
    circuit: Circuit,
    before: Mapping[int, int],
    after: Mapping[int, int],
) -> float:
    """Simulate the transition ``before -> after`` and return the time of
    the last primary-output change (0.0 if no output changes).

    Each primary input switches at its arrival time
    (``circuit.input_arrival``).  Gates have transport delay ``d(g)``;
    connections add ``d(c)``.
    """
    # steady state under `before`
    values = circuit.evaluate(dict(before))
    pin_values: Dict[int, int] = {
        cid: values[conn.src] for cid, conn in circuit.conns.items()
    }
    out_change: float = 0.0
    counter = itertools.count()
    # event = (time, seq, kind, payload)
    #   kind "pin":    payload = (cid, value)      connection value arrives
    #   kind "output": payload = (gid, value)      gate output assumes value
    heap: List[Tuple[float, int, str, tuple]] = []

    def schedule_output(gid: int, value: int, at: float) -> None:
        heapq.heappush(heap, (at, next(counter), "output", (gid, value)))

    for gid in circuit.inputs:
        if after[gid] != before[gid]:
            at = circuit.input_arrival.get(gid, 0.0)
            schedule_output(gid, after[gid], at)

    while heap:
        time, _, kind, payload = heapq.heappop(heap)
        if kind == "output":
            gid, value = payload
            if values[gid] == value:
                continue
            values[gid] = value
            gate = circuit.gates[gid]
            if gate.gtype is GateType.OUTPUT:
                out_change = max(out_change, time)
            for cid in gate.fanout:
                conn = circuit.conns[cid]
                heapq.heappush(
                    heap,
                    (
                        time + conn.delay,
                        next(counter),
                        "pin",
                        (cid, value),
                    ),
                )
        else:
            cid, value = payload
            if pin_values[cid] == value:
                continue
            pin_values[cid] = value
            conn = circuit.conns[cid]
            gate = circuit.gates[conn.dst]
            if gate.gtype is GateType.INPUT:
                continue
            ins = [pin_values[c] for c in gate.fanin]
            new_out = eval_gate(gate.gtype, ins)
            if gate.gtype is GateType.OUTPUT:
                # output markers are zero-delay observers
                schedule_output(conn.dst, new_out, time)
            else:
                schedule_output(conn.dst, new_out, time + gate.delay)
    return out_change


def output_waveforms(
    circuit: Circuit,
    before: Mapping[int, int],
    after: Mapping[int, int],
) -> Dict[int, List[Tuple[float, int]]]:
    """Simulate the transition and return each primary output's waveform.

    The waveform is a list of (time, value) change events, starting with
    (0.0, steady value under ``before``).  Sampling a waveform at time t
    gives the output a flip-flop clocked at t would capture -- the
    primitive under the speedtest analysis
    (:mod:`repro.timing.speedtest`).
    """
    waves: Dict[int, List[Tuple[float, int]]] = {}
    steady = circuit.evaluate(dict(before))
    for po in circuit.outputs:
        waves[po] = [(0.0, steady[po])]

    values = dict(steady)
    pin_values: Dict[int, int] = {
        cid: values[conn.src] for cid, conn in circuit.conns.items()
    }
    counter = itertools.count()
    heap: List[Tuple[float, int, str, tuple]] = []

    def schedule_output(gid: int, value: int, at: float) -> None:
        heapq.heappush(heap, (at, next(counter), "output", (gid, value)))

    for gid in circuit.inputs:
        if after[gid] != before[gid]:
            schedule_output(
                gid, after[gid], circuit.input_arrival.get(gid, 0.0)
            )
    while heap:
        time, _, kind, payload = heapq.heappop(heap)
        if kind == "output":
            gid, value = payload
            if values[gid] == value:
                continue
            values[gid] = value
            gate = circuit.gates[gid]
            if gate.gtype is GateType.OUTPUT:
                waves[gid].append((time, value))
            for cid in gate.fanout:
                conn = circuit.conns[cid]
                heapq.heappush(
                    heap,
                    (time + conn.delay, next(counter), "pin", (cid, value)),
                )
        else:
            cid, value = payload
            if pin_values[cid] == value:
                continue
            pin_values[cid] = value
            conn = circuit.conns[cid]
            gate = circuit.gates[conn.dst]
            if gate.gtype is GateType.INPUT:
                continue
            ins = [pin_values[c] for c in gate.fanin]
            new_out = eval_gate(gate.gtype, ins)
            delay = 0.0 if gate.gtype is GateType.OUTPUT else gate.delay
            schedule_output(conn.dst, new_out, time + delay)
    return waves


def sample_waveform(
    waveform: List[Tuple[float, int]], at: float
) -> int:
    """Value of a waveform strictly sampled at time ``at`` (the value of
    the last change at or before ``at``)."""
    value = waveform[0][1]
    for time, v in waveform:
        if time <= at + 1e-12:
            value = v
        else:
            break
    return value


def true_delay(
    circuit: Circuit,
    max_inputs: int = 10,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
) -> float:
    """Exact circuit delay by exhaustive pair simulation.

    Enumerates every ordered pair of distinct input vectors (or the given
    ``pairs`` of integer-encoded vectors) and returns the maximum settle
    time.  Exponential in both directions -- oracle use only, guarded by
    ``max_inputs``.
    """
    pis = circuit.inputs
    n = len(pis)
    if n > max_inputs:
        raise ValueError(
            f"true_delay limited to {max_inputs} inputs; circuit has {n}"
        )

    def decode(bits: int) -> Dict[int, int]:
        return {gid: (bits >> i) & 1 for i, gid in enumerate(pis)}

    if pairs is None:
        pairs = (
            (a, b)
            for a in range(1 << n)
            for b in range(1 << n)
            if a != b
        )
    worst = 0.0
    for a, b in pairs:
        worst = max(worst, settle_time(circuit, decode(a), decode(b)))
    return worst
