"""Bit-parallel pattern simulation.

Packs W test patterns into the bits of Python integers so a whole pattern
block is simulated with one bitwise operation per gate.  Python's
arbitrary-precision ints make the word width a free parameter; the fault
simulator and the random-vector equivalence checker both run on top of
this.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..network import Circuit, GateType
from .opcodes import OP_INPUT, OPCODE, eval_op_word


def eval_gate_bits(gtype: GateType, inputs: Sequence[int], mask: int) -> int:
    """Evaluate one gate over a packed word of patterns.

    Delegates to the shared opcode table (:mod:`repro.sim.opcodes`) so
    the interpreted oracle, the compiled kernel, and the batch kernel
    all evaluate through the same truth tables.
    """
    op = OPCODE.get(gtype)
    if op is None or op == OP_INPUT:
        raise ValueError(f"cannot evaluate {gtype}")
    return eval_op_word(op, inputs, mask)


def simulate_packed(
    circuit: Circuit,
    packed_inputs: Mapping[int, int],
    width: int,
    overrides: Optional[Mapping[int, int]] = None,
) -> Dict[int, int]:
    """Simulate ``width`` patterns at once.

    ``packed_inputs`` maps PI gid -> packed word (bit i = pattern i's
    value).  ``overrides`` optionally forces gate outputs to fixed packed
    words -- the hook the fault simulator uses to inject a stuck-at value
    at a stem.  Returns packed words for every gate.
    """
    mask = (1 << width) - 1
    values: Dict[int, int] = {}
    overrides = overrides or {}
    for gid in circuit.topological_order():
        gate = circuit.gates[gid]
        if gid in overrides:
            values[gid] = overrides[gid] & mask
            continue
        if gate.gtype is GateType.INPUT:
            values[gid] = packed_inputs.get(gid, 0) & mask
        else:
            ins = [values[circuit.conns[c].src] for c in gate.fanin]
            values[gid] = eval_gate_bits(gate.gtype, ins, mask)
    return values


def pack_vectors(
    circuit: Circuit, vectors: Sequence[Mapping[int, int]]
) -> Tuple[Dict[int, int], int]:
    """Pack per-pattern PI assignments into words.

    Returns (packed map PI gid -> word, width).  Masks consistently
    against the PI set: keys outside ``circuit.inputs`` are ignored,
    missing PIs pack as 0, and values are reduced to their low bit so
    a sloppy ``{gid: 2}`` entry cannot silently set the wrong pattern.
    """
    packed: Dict[int, int] = {gid: 0 for gid in circuit.inputs}
    for i, vec in enumerate(vectors):
        bit = 1 << i
        for gid in circuit.inputs:
            if vec.get(gid, 0) & 1:
                packed[gid] |= bit
    return packed, len(vectors)


def random_packed_inputs(
    circuit: Circuit, width: int, rng: random.Random
) -> Dict[int, int]:
    """Uniform random packed input words for ``width`` patterns."""
    return {
        gid: rng.getrandbits(width) for gid in circuit.inputs
    }


def random_equivalence_check(
    a: Circuit,
    b: Circuit,
    patterns: int = 4096,
    seed: int = 0,
    width: int = 256,
    compiled: Optional[bool] = None,
) -> Optional[Dict[str, int]]:
    """Random-vector equivalence filter.

    Returns None if no difference found over ``patterns`` random vectors,
    else a counterexample as a name -> value map.  A None result is *not*
    a proof -- use :mod:`repro.sat.equivalence` for that -- but this is a
    fast pre-filter and a cross-check that runs on any size of circuit.

    Both circuits are compiled once (:mod:`repro.sim.kernel`) and every
    pattern chunk reuses the schedules; ``compiled=False`` (or the
    ``REPRO_SIM_LEGACY`` environment variable) forces the interpreted
    per-call path as the A/B oracle.
    """
    from .kernel import get_compiled, kernel_enabled

    a_pis = {a.gates[g].name: g for g in a.inputs}
    b_pis = {b.gates[g].name: g for g in b.inputs}
    if set(a_pis) != set(b_pis):
        raise ValueError("PI name sets differ")
    a_pos = {a.gates[g].name: g for g in a.outputs}
    b_pos = {b.gates[g].name: g for g in b.outputs}
    if set(a_pos) != set(b_pos):
        raise ValueError("PO name sets differ")
    use_kernel = kernel_enabled() if compiled is None else compiled
    kern_a = get_compiled(a) if use_kernel else None
    kern_b = get_compiled(b) if use_kernel else None
    rng = random.Random(seed)
    names = sorted(a_pis)
    remaining = patterns
    while remaining > 0:
        w = min(width, remaining)
        remaining -= w
        words = {n: rng.getrandbits(w) for n in names}
        pa = {a_pis[n]: words[n] for n in names}
        pb = {b_pis[n]: words[n] for n in names}
        if use_kernel:
            va = kern_a.evaluate(pa, w)
            vb = kern_b.evaluate(pb, w)
        else:
            va = simulate_packed(a, pa, w)
            vb = simulate_packed(b, pb, w)
        for name in a_pos:
            diff = va[a_pos[name]] ^ vb[b_pos[name]]
            if diff:
                bit = (diff & -diff).bit_length() - 1
                return {
                    n: (words[n] >> bit) & 1 for n in names
                }
    return None
